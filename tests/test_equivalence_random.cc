/**
 * @file
 * Randomized equivalence tests for the table-driven search engines: the
 * optimized DP (OptimalPartitioner::partition), the table-driven
 * Algorithm 1 (PairwisePartitioner::partition), the Gray-code
 * enumerator (bruteForcePairwise) and the incremental sweep scorer
 * (sweepLevelBytes) must return *bit-identical* costs and plans to the
 * naive seed implementations, which are kept as *_reference oracles.
 *
 * "Bit-identical" is EXPECT_EQ on doubles — no ULP tolerance. The
 * optimized paths are constructed to replay the oracles' exact
 * floating-point operation order, and these tests enforce that across
 * 100+ random networks, histories, batch sizes, word widths, exchange
 * factors and scaling modes.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/brute_force.hh"
#include "core/comm_model.hh"
#include "core/optimal_partitioner.hh"
#include "core/pairwise_partitioner.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::History;
using core::LevelPlan;
using core::Parallelism;

namespace {

/** Random conv/fc chain with 2..10 weighted layers. */
dnn::Network
randomNetwork(std::mt19937 &rng)
{
    std::uniform_int_distribution<int> convs(0, 2);
    std::uniform_int_distribution<int> fcs(2, 8);
    std::uniform_int_distribution<std::size_t> channels(1, 64);
    std::uniform_int_distribution<std::size_t> widths(1, 512);

    const int num_convs = convs(rng);
    dnn::NetworkBuilder b("rand",
                          num_convs > 0
                              ? dnn::SampleShape{3, 16, 16}
                              : dnn::SampleShape{widths(rng), 1, 1});
    for (int c = 0; c < num_convs; ++c)
        b.conv("conv" + std::to_string(c), channels(rng), 3);
    const int num_fcs = fcs(rng);
    for (int f = 0; f < num_fcs; ++f)
        b.fc("fc" + std::to_string(f), widths(rng));
    return b.build();
}

CommConfig
randomConfig(std::mt19937 &rng)
{
    std::uniform_int_distribution<std::size_t> batch(1, 512);
    std::uniform_int_distribution<int> word(0, 2);
    std::bernoulli_distribution coin(0.5);

    CommConfig cfg;
    cfg.batch = batch(rng);
    cfg.wordBytes = std::array<double, 3>{1.0, 2.0, 4.0}[word(rng)];
    cfg.exchangeFactor = coin(rng) ? 2.0 : 1.0;
    cfg.scaling = coin(rng) ? CommConfig::Scaling::kPartitioned
                            : CommConfig::Scaling::kNone;
    return cfg;
}

History
randomHistory(std::size_t layers, std::mt19937 &rng)
{
    std::uniform_int_distribution<int> depth(0, 4);
    std::bernoulli_distribution coin(0.5);
    History hist(layers);
    const int d = depth(rng);
    for (int i = 0; i < d; ++i) {
        LevelPlan plan(layers, Parallelism::kData);
        for (auto &p : plan)
            if (coin(rng))
                p = Parallelism::kModel;
        hist.push(plan);
    }
    return hist;
}

} // namespace

TEST(EquivalenceRandom, CommModelTablesMatchReferenceFormulas)
{
    std::mt19937 rng(101);
    for (int trial = 0; trial < 100; ++trial) {
        const dnn::Network net = randomNetwork(rng);
        const CommModel model(net, randomConfig(rng));
        const History hist = randomHistory(net.size(), rng);

        core::PairTables tables;
        model.fillPairTables(hist, tables);

        for (std::size_t l = 0; l < net.size(); ++l) {
            for (auto p : {Parallelism::kData, Parallelism::kModel}) {
                const double cached = model.intraBytes(l, p, hist);
                EXPECT_EQ(cached,
                          model.intraBytesReference(l, p, hist))
                    << "trial " << trial << " layer " << l;
                EXPECT_EQ(cached,
                          tables.intra[2 * l + static_cast<int>(p)]);
            }
            if (l + 1 == net.size())
                continue;
            for (auto prev : {Parallelism::kData, Parallelism::kModel}) {
                for (auto cur :
                     {Parallelism::kData, Parallelism::kModel}) {
                    const double cached =
                        model.interBytes(l, prev, cur, hist);
                    EXPECT_EQ(cached, model.interBytesReference(
                                          l, prev, cur, hist))
                        << "trial " << trial << " layer " << l;
                    EXPECT_EQ(cached,
                              tables.inter[4 * l +
                                           2 * static_cast<int>(prev) +
                                           static_cast<int>(cur)]);
                    // Count-based API agrees exactly too.
                    EXPECT_EQ(cached,
                              model.interBytesAt(l, prev, cur,
                                                 hist.dpCount(l),
                                                 hist.dpCount(l + 1)));
                }
            }
        }
    }
}

TEST(EquivalenceRandom, PairwisePartitionerMatchesReference)
{
    std::mt19937 rng(202);
    for (int trial = 0; trial < 150; ++trial) {
        const dnn::Network net = randomNetwork(rng);
        const CommModel model(net, randomConfig(rng));
        const History hist = randomHistory(net.size(), rng);

        const core::PairwisePartitioner partitioner(model);
        const auto fast = partitioner.partition(hist);
        const auto ref = partitioner.partitionReference(hist);
        EXPECT_EQ(fast.commBytes, ref.commBytes) << "trial " << trial;
        EXPECT_EQ(fast.plan, ref.plan) << "trial " << trial;
    }
}

TEST(EquivalenceRandom, GrayCodeEnumeratorMatchesReference)
{
    std::mt19937 rng(303);
    for (int trial = 0; trial < 120; ++trial) {
        const dnn::Network net = randomNetwork(rng);
        const CommModel model(net, randomConfig(rng));
        const History hist = randomHistory(net.size(), rng);

        const auto fast = core::bruteForcePairwise(model, hist);
        const auto ref = core::bruteForcePairwiseReference(model, hist);
        EXPECT_EQ(fast.commBytes, ref.commBytes) << "trial " << trial;
        EXPECT_EQ(fast.plan, ref.plan) << "trial " << trial;

        // The enumerated optimum is also what Algorithm 1 finds.
        const auto dp = core::PairwisePartitioner(model).partition(hist);
        EXPECT_EQ(fast.commBytes, dp.commBytes) << "trial " << trial;
        EXPECT_EQ(fast.plan, dp.plan) << "trial " << trial;
    }
}

TEST(EquivalenceRandom, OptimalPartitionerMatchesReference)
{
    std::mt19937 rng(404);
    std::uniform_int_distribution<std::size_t> levels(1, 4);
    for (int trial = 0; trial < 100; ++trial) {
        const dnn::Network net = randomNetwork(rng);
        const CommModel model(net, randomConfig(rng));
        const core::OptimalPartitioner partitioner(model);

        const std::size_t h = levels(rng);
        const auto fast = partitioner.partition(h);
        const auto ref = partitioner.partitionReference(h);
        EXPECT_EQ(fast.commBytes, ref.commBytes)
            << "trial " << trial << " H=" << h;
        EXPECT_EQ(fast.plan, ref.plan) << "trial " << trial << " H=" << h;
    }
}

TEST(EquivalenceRandom, SparseBeamAndAStarEnginesMatchDenseDp)
{
    // The sparse engine prunes with a monotone floating-point lower
    // bound, the beam engine is exhaustive whenever its width covers
    // 2^H, and the A* engine prunes against its admissible suffix
    // bound — all three must reproduce the dense DP bit for bit across
    // random networks, depths up to the old ceiling, and model configs.
    std::mt19937 rng(606);
    std::uniform_int_distribution<std::size_t> levels(3, 8);
    for (int trial = 0; trial < 60; ++trial) {
        const dnn::Network net = randomNetwork(rng);
        const CommModel model(net, randomConfig(rng));
        const core::OptimalPartitioner partitioner(model);

        const std::size_t h = levels(rng);
        const auto dense = partitioner.partition(h);

        core::SearchOptions sparse;
        sparse.engine = core::SearchEngine::kSparse;
        const auto sp = partitioner.partition(h, sparse);
        EXPECT_EQ(sp.commBytes, dense.commBytes)
            << "trial " << trial << " H=" << h;
        EXPECT_EQ(sp.plan, dense.plan) << "trial " << trial << " H=" << h;

        // Default width (>= 1024) covers every state at H <= 8, so the
        // beam is exhaustive and exact here.
        core::SearchOptions beam;
        beam.engine = core::SearchEngine::kBeam;
        const auto bm = partitioner.partition(h, beam);
        EXPECT_EQ(bm.commBytes, dense.commBytes)
            << "trial " << trial << " H=" << h;
        EXPECT_EQ(bm.plan, dense.plan) << "trial " << trial << " H=" << h;

        core::SearchOptions astar;
        astar.engine = core::SearchEngine::kAStar;
        const auto as = partitioner.partition(h, astar);
        EXPECT_EQ(as.commBytes, dense.commBytes)
            << "trial " << trial << " H=" << h;
        EXPECT_EQ(as.plan, dense.plan) << "trial " << trial << " H=" << h;
        EXPECT_TRUE(as.stats.certifiedExact)
            << "trial " << trial << " H=" << h;
    }
}

TEST(EquivalenceRandom, AStarMatchesSparsePastTheDenseCeiling)
{
    // Above H = 10 the dense oracle is gone; the sparse engine (exact
    // by dominance pruning alone) stands in. A* must agree bit for bit
    // at depths the dense DP cannot reach, across random networks and
    // model configs.
    std::mt19937 rng(909);
    std::uniform_int_distribution<std::size_t> levels(11, 13);
    for (int trial = 0; trial < 6; ++trial) {
        const dnn::Network net = randomNetwork(rng);
        const CommModel model(net, randomConfig(rng));
        const core::OptimalPartitioner partitioner(model);

        const std::size_t h = levels(rng);
        core::SearchOptions sparse;
        sparse.engine = core::SearchEngine::kSparse;
        const auto sp = partitioner.partition(h, sparse);

        core::SearchOptions astar;
        astar.engine = core::SearchEngine::kAStar;
        const auto as = partitioner.partition(h, astar);
        EXPECT_EQ(as.commBytes, sp.commBytes)
            << "trial " << trial << " L=" << net.size() << " H=" << h;
        EXPECT_EQ(as.plan, sp.plan)
            << "trial " << trial << " L=" << net.size() << " H=" << h;
        EXPECT_TRUE(as.stats.certifiedExact);
    }

    // One zoo instance at the H = 14 reach of both engines.
    const dnn::Network net = dnn::makeLenetC();
    const CommModel model(net, CommConfig{});
    const core::OptimalPartitioner partitioner(model);
    core::SearchOptions sparse;
    sparse.engine = core::SearchEngine::kSparse;
    const auto sp = partitioner.partition(14, sparse);
    core::SearchOptions astar;
    astar.engine = core::SearchEngine::kAStar;
    const auto as = partitioner.partition(14, astar);
    EXPECT_EQ(as.commBytes, sp.commBytes);
    EXPECT_EQ(as.plan, sp.plan);
}

TEST(EquivalenceRandom, CertifiedBeamResultsMatchAStar)
{
    // The property the adaptive beam's certificate promises: whenever
    // a beam pass reports certifiedExact — at whatever width it
    // self-selected, starting from a deliberately tiny frontier — its
    // cost *and plan* equal the A* engine's exact optimum.
    std::mt19937 rng(1010);
    std::uniform_int_distribution<std::size_t> levels(4, 9);
    for (int trial = 0; trial < 25; ++trial) {
        const dnn::Network net = randomNetwork(rng);
        const CommModel model(net, randomConfig(rng));
        const core::OptimalPartitioner partitioner(model);
        const std::size_t h = levels(rng);

        core::SearchOptions astar;
        astar.engine = core::SearchEngine::kAStar;
        const auto exact = partitioner.partition(h, astar);

        core::SearchOptions adaptive;
        adaptive.engine = core::SearchEngine::kBeam;
        adaptive.beamWidthStart = 4;
        const auto bm = partitioner.partition(h, adaptive);
        ASSERT_TRUE(bm.stats.certifiedExact)
            << "trial " << trial << " H=" << h;
        EXPECT_EQ(bm.commBytes, exact.commBytes)
            << "trial " << trial << " H=" << h;
        EXPECT_EQ(bm.plan, exact.plan) << "trial " << trial << " H=" << h;

        // A starved fixed-width pass may or may not certify, but its
        // claim must stay honest either way.
        core::SearchOptions starved;
        starved.engine = core::SearchEngine::kBeam;
        starved.beamWidth = 3;
        const auto fx = partitioner.partition(h, starved);
        if (fx.stats.certifiedExact) {
            EXPECT_EQ(fx.commBytes, exact.commBytes)
                << "trial " << trial << " H=" << h;
            EXPECT_EQ(fx.plan, exact.plan)
                << "trial " << trial << " H=" << h;
        } else {
            EXPECT_GE(fx.commBytes, exact.commBytes)
                << "trial " << trial << " H=" << h;
        }
    }
}

TEST(EquivalenceRandom, GrayCodeHierarchicalMatchesReference)
{
    // The joint Gray-code enumerator must reproduce the naive (2^L)^H
    // recursion bit for bit: same total bytes, same plan on ties.
    std::mt19937 rng(707);
    std::uniform_int_distribution<std::size_t> levels(1, 3);
    for (int trial = 0; trial < 60; ++trial) {
        const dnn::Network net = randomNetwork(rng);
        const CommModel model(net, randomConfig(rng));

        std::size_t h = levels(rng);
        while (h > 1 && net.size() * h > 16)
            --h; // keep the naive oracle's rescan affordable
        if (net.size() * h > 16)
            continue;

        const auto fast = core::bruteForceHierarchical(model, h);
        const auto ref = core::bruteForceHierarchicalReference(model, h);
        EXPECT_EQ(fast.commBytes, ref.commBytes)
            << "trial " << trial << " L=" << net.size() << " H=" << h;
        EXPECT_EQ(fast.plan, ref.plan)
            << "trial " << trial << " L=" << net.size() << " H=" << h;
    }
}

TEST(EquivalenceRandom, JointDpMatchesGrayCodeHierarchicalOracle)
{
    // The widened oracle at work: every engine of the joint DP agrees
    // with exhaustive enumeration at H = 2-3 on networks big enough to
    // exercise real pruning (the old naive recursion choked above
    // L*H = 24; the Gray-code tape reaches these sizes in well under a
    // second).
    std::mt19937 rng(808);
    for (int trial = 0; trial < 25; ++trial) {
        const dnn::Network net = randomNetwork(rng);
        const CommModel model(net, randomConfig(rng));
        const core::OptimalPartitioner partitioner(model);

        const std::size_t h = net.size() <= 8 ? 3 : 2;
        if (net.size() * h > 26)
            continue;
        const auto brute = core::bruteForceHierarchical(model, h);

        for (auto engine :
             {core::SearchEngine::kDense, core::SearchEngine::kSparse,
              core::SearchEngine::kBeam, core::SearchEngine::kAStar}) {
            core::SearchOptions opts;
            opts.engine = engine;
            const auto exact = partitioner.partition(h, opts);
            EXPECT_DOUBLE_EQ(exact.commBytes, brute.commBytes)
                << "trial " << trial << " L=" << net.size() << " H=" << h
                << " engine=" << static_cast<int>(engine);
        }
    }
}

TEST(EquivalenceRandom, SweepLevelBytesMatchesPlanBytes)
{
    std::mt19937 rng(505);
    std::uniform_int_distribution<std::size_t> levels(1, 4);
    std::bernoulli_distribution coin(0.5);
    for (int trial = 0; trial < 100; ++trial) {
        const dnn::Network net = randomNetwork(rng);
        if (net.size() > 10)
            continue; // keep the 2^L naive rescan cheap
        const CommModel model(net, randomConfig(rng));

        const std::size_t num_levels = levels(rng);
        core::HierarchicalPlan base;
        base.levels.assign(num_levels,
                           LevelPlan(net.size(), Parallelism::kData));
        for (auto &level : base.levels)
            for (auto &p : level)
                if (coin(rng))
                    p = Parallelism::kModel;
        const std::size_t swept =
            std::uniform_int_distribution<std::size_t>(
                0, num_levels - 1)(rng);

        // Naive oracle: substitute each mask and fully rescore.
        std::vector<double> expected(std::size_t{1} << net.size());
        core::sweepLevelMasks(
            base, swept,
            [&](std::uint64_t mask, const core::HierarchicalPlan &plan) {
                expected[mask] = model.planBytes(plan);
            });

        std::size_t visited = 0;
        core::sweepLevelBytes(
            model, base, swept,
            [&](std::uint64_t mask, double bytes) {
                EXPECT_EQ(bytes, expected[mask])
                    << "trial " << trial << " mask " << mask;
                ++visited;
            });
        EXPECT_EQ(visited, expected.size()) << "trial " << trial;
    }
}
