/**
 * @file
 * Tests for the mesh ablation topology (torus without wraparound).
 */

#include <gtest/gtest.h>

#include "noc/htree.hh"
#include "noc/torus.hh"
#include "sim/evaluator.hh"

#include "dnn/model_zoo.hh"

using namespace hypar;
using noc::MeshTopology;
using noc::TopologyConfig;
using noc::TorusTopology;

namespace {

TopologyConfig
noLatency()
{
    TopologyConfig cfg;
    cfg.perHopLatency = 0.0;
    return cfg;
}

} // namespace

TEST(Mesh, NameAndShape)
{
    MeshTopology mesh(4, TopologyConfig{});
    EXPECT_EQ(mesh.name(), "Mesh");
    EXPECT_EQ(mesh.gridWidth(), 4u);
    EXPECT_EQ(mesh.gridHeight(), 4u);
    EXPECT_EQ(TorusTopology(4, TopologyConfig{}).name(), "Torus");
}

TEST(Mesh, NeverFasterThanTorus)
{
    // Removing the wrap links can only concentrate load further.
    MeshTopology mesh(4, noLatency());
    TorusTopology torus(4, noLatency());
    for (std::size_t h = 0; h < 4; ++h) {
        EXPECT_GE(mesh.exchangeSeconds(h, 1e9),
                  torus.exchangeSeconds(h, 1e9) * (1 - 1e-12))
            << "level " << h;
    }
}

TEST(Mesh, LeafNeighborsUnchanged)
{
    // Leaf partners are grid neighbors; no wrap link is involved, so
    // mesh == torus at the deepest level.
    MeshTopology mesh(4, noLatency());
    TorusTopology torus(4, noLatency());
    EXPECT_NEAR(mesh.exchangeSeconds(3, 1e8),
                torus.exchangeSeconds(3, 1e8), 1e-15);
}

TEST(Mesh, EndToEndThroughEvaluator)
{
    sim::SimConfig cfg;
    cfg.topology = sim::TopologyKind::kMesh;
    sim::Evaluator ev(dnn::makeLenetC(), cfg);
    EXPECT_EQ(ev.topology().name(), "Mesh");
    const auto m = ev.evaluate(core::Strategy::kHypar);
    EXPECT_GT(m.stepSeconds, 0.0);

    // Mesh is never faster than the torus end-to-end either.
    sim::SimConfig torus_cfg;
    torus_cfg.topology = sim::TopologyKind::kTorus;
    sim::Evaluator torus(dnn::makeLenetC(), torus_cfg);
    EXPECT_GE(m.stepSeconds,
              torus.evaluate(core::Strategy::kHypar).stepSeconds *
                  (1 - 1e-12));
}
