/**
 * @file
 * Tests deriving the communication model from tensor shard geometry:
 * the Table 2 coefficients (0, 0.25+0.25, 0.5, 0.5) must emerge as
 * theorems from region overlap, and the geometric derivation must
 * agree with CommModel's closed form on arbitrary layer shapes.
 */

#include <gtest/gtest.h>

#include "core/comm_model.hh"
#include "core/shard_geometry.hh"
#include "dnn/builder.hh"
#include "util/logging.hh"

using namespace hypar;
using core::BoundaryGeometry;
using core::Group;
using core::IndexRange;
using core::Parallelism;
using core::TensorRegion;

namespace {
constexpr auto kDp = Parallelism::kData;
constexpr auto kMp = Parallelism::kModel;
} // namespace

TEST(IndexRange, IntersectAndSize)
{
    IndexRange a{0, 10};
    IndexRange b{5, 15};
    EXPECT_EQ(a.intersect(b), (IndexRange{5, 10}));
    EXPECT_EQ(a.intersect(b).size(), 5u);
    IndexRange disjoint{20, 30};
    EXPECT_EQ(a.intersect(disjoint).size(), 0u);
    EXPECT_EQ(IndexRange{}.size(), 0u);
}

TEST(TensorRegion, MissingFromIsBoxMinusBox)
{
    TensorRegion l{{0, 8}, {0, 16}};   // 128 elements
    TensorRegion held{{0, 4}, {0, 16}}; // covers half
    EXPECT_EQ(l.missingFrom(held), 64u);
    EXPECT_EQ(l.missingFrom(l), 0u);
    TensorRegion nothing{{0, 0}, {0, 0}};
    EXPECT_EQ(l.missingFrom(nothing), 128u);
}

TEST(ShardGeometry, Table2FeatureCoefficients)
{
    // For any even batch/channel sizes the feature-boundary traffic
    // must be exactly Table 2's F coefficients x 2 (both groups).
    for (std::size_t b : {4u, 32u, 256u}) {
        for (std::size_t c : {2u, 64u, 1000u}) {
            if (c % 2)
                continue;
            BoundaryGeometry g(b, c);
            const auto volume = static_cast<double>(b * c);
            EXPECT_EQ(g.featureTraffic(kDp, kDp), 0u);
            EXPECT_DOUBLE_EQ(
                static_cast<double>(g.featureTraffic(kDp, kMp)),
                2 * 0.25 * volume);
            EXPECT_EQ(g.featureTraffic(kMp, kMp), 0u);
            EXPECT_EQ(g.featureTraffic(kMp, kDp), 0u);
        }
    }
}

TEST(ShardGeometry, Table2ErrorCoefficients)
{
    for (std::size_t b : {4u, 32u, 256u}) {
        for (std::size_t c : {2u, 64u, 128u}) {
            BoundaryGeometry g(b, c);
            const auto volume = static_cast<double>(b * c);
            EXPECT_EQ(g.errorTraffic(kDp, kDp), 0u);
            EXPECT_DOUBLE_EQ(
                static_cast<double>(g.errorTraffic(kDp, kMp)),
                2 * 0.25 * volume);
            EXPECT_DOUBLE_EQ(
                static_cast<double>(g.errorTraffic(kMp, kMp)),
                2 * 0.5 * volume);
            EXPECT_DOUBLE_EQ(
                static_cast<double>(g.errorTraffic(kMp, kDp)),
                2 * 0.5 * volume);
        }
    }
}

TEST(ShardGeometry, RegionsMatchFigureTwoPicture)
{
    // The Section 3.1 example: batch 32, boundary channels 100.
    BoundaryGeometry g(32, 100);

    // dp producer: each group holds its batch half of F.
    EXPECT_EQ(g.featureHeld(kDp, Group::kFirst),
              (TensorRegion{{0, 16}, {0, 100}}));
    EXPECT_EQ(g.featureHeld(kDp, Group::kSecond),
              (TensorRegion{{16, 32}, {0, 100}}));
    // mp producer: full tensor after the psum reduction.
    EXPECT_EQ(g.featureHeld(kMp, Group::kFirst).volume(), 3200u);

    // mp consumer needs its channel half; dp consumer its batch half.
    EXPECT_EQ(g.featureNeeded(kMp, Group::kSecond),
              (TensorRegion{{0, 32}, {50, 100}}));
    EXPECT_EQ(g.featureNeeded(kDp, Group::kFirst),
              (TensorRegion{{0, 16}, {0, 100}}));

    // Error tensor: mp consumer (layer l) needs the full E.
    EXPECT_EQ(g.errorNeeded(kMp, Group::kFirst).volume(), 3200u);
    EXPECT_EQ(g.errorHeld(kMp, Group::kFirst),
              (TensorRegion{{0, 32}, {0, 50}}));
}

TEST(ShardGeometry, IntraTrafficMatchesTableOne)
{
    EXPECT_EQ(core::intraTraffic(kDp, 7000, 3200), 14000u);
    EXPECT_EQ(core::intraTraffic(kMp, 7000, 3200), 6400u);
}

TEST(ShardGeometry, AgreesWithCommModelOnArbitraryShapes)
{
    // Cross-module property: the geometric derivation equals the
    // closed-form communication model for randomized fc chains.
    struct Shape
    {
        std::size_t in, mid, out, batch;
    };
    const Shape shapes[] = {
        {70, 100, 10, 32},   {128, 256, 64, 16},  {512, 512, 512, 256},
        {8, 1024, 2, 64},    {300, 4096, 1000, 128},
    };

    for (const auto &s : shapes) {
        dnn::Network net =
            dnn::NetworkBuilder("g", {s.in, 1, 1})
                .fc("a", s.mid)
                .fc("b", s.out)
                .build();
        core::CommConfig cfg;
        cfg.batch = s.batch;
        core::CommModel model(net, cfg);
        core::History hist(2);
        BoundaryGeometry g(s.batch, s.mid);

        for (auto prev : {kDp, kMp}) {
            for (auto cur : {kDp, kMp}) {
                const double geometric =
                    (static_cast<double>(g.featureTraffic(prev, cur)) +
                     static_cast<double>(g.errorTraffic(prev, cur))) *
                    4.0; // fp32
                EXPECT_DOUBLE_EQ(model.interBytes(0, prev, cur, hist),
                                 geometric)
                    << s.in << "-" << s.mid << " " << core::toString(prev)
                    << "-" << core::toString(cur);
            }
            const double intra_geo =
                static_cast<double>(core::intraTraffic(
                    prev, net.layer(0).weightElems(),
                    net.layer(0).outRawElemsPerSample() * s.batch)) *
                4.0;
            EXPECT_DOUBLE_EQ(model.intraBytes(0, prev, hist), intra_geo);
        }
    }
}

TEST(ShardGeometry, RejectsEmptyTensors)
{
    EXPECT_THROW(BoundaryGeometry(0, 8), util::FatalError);
    EXPECT_THROW(BoundaryGeometry(8, 0), util::FatalError);
}
