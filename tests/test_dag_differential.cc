/**
 * @file
 * Differential net for the DAG generalization. Three invariants:
 *
 *  1. *Randomized DAG exactness*: on seed-deterministic series-parallel
 *     DAGs (tests/support/sp_dag_gen.hh) all four search engines must
 *     agree bit for bit — plans AND costs, EXPECT_EQ on doubles — with
 *     the flat enumeration oracle (bruteForceHierarchical), and the DP
 *     total must equal planBytes of the returned plan exactly. The
 *     generator keeps every coefficient dyadic precisely so this can be
 *     equality, not closeness.
 *
 *  2. *Chain degeneracy*: every zoo model rebuilt through the DAG
 *     constructor with explicit chain edges must report isChain() and
 *     produce byte-identical plans, costs, step metrics and batch
 *     evaluations (1/2/8 threads) — the DAG machinery must be
 *     invisible on chains.
 *
 *  3. *Fixture end-to-end*: the ResNet-block / Inception-branch zoo
 *     fixtures solve exactly against the oracle and simulate through
 *     the topological task order; the DAG sweep fallback visits every
 *     mask in ascending order with per-mask-simulate metrics.
 *
 * Registered in the CI sanitizer job by name (like
 * test_faults_differential), so every trial also runs under
 * ASan + UBSan.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/brute_force.hh"
#include "core/comm_model.hh"
#include "core/optimal_partitioner.hh"
#include "core/series_parallel.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "dnn/network.hh"
#include "sim/evaluator.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

#include "support/sp_dag_gen.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::SearchEngine;
using core::SearchOptions;

namespace {

constexpr SearchEngine kEngines[] = {
    SearchEngine::kDense, SearchEngine::kSparse, SearchEngine::kBeam,
    SearchEngine::kAStar};

/** Rebuild a network through the DAG constructor with every chain edge
 *  spelled out explicitly. */
dnn::Network
rebuildAsExplicitDag(const dnn::Network &net)
{
    std::vector<std::vector<std::size_t>> preds(net.size());
    for (std::size_t l = 1; l < net.size(); ++l)
        preds[l] = {l - 1};
    return dnn::Network(net.name(), net.inputShape(), net.layers(),
                        std::move(preds));
}

void
expectSameMetrics(const sim::StepMetrics &a, const sim::StepMetrics &b,
                  const std::string &what)
{
    EXPECT_EQ(a.stepSeconds, b.stepSeconds) << what;
    EXPECT_EQ(a.computeBusySeconds, b.computeBusySeconds) << what;
    EXPECT_EQ(a.networkBusySeconds, b.networkBusySeconds) << what;
    EXPECT_EQ(a.commBytes, b.commBytes) << what;
    EXPECT_EQ(a.energy.totalJ(), b.energy.totalJ()) << what;
}

} // namespace

TEST(DagDifferential, GeneratorIsSeedDeterministic)
{
    for (std::uint64_t seed : {1ULL, 17ULL, 424242ULL}) {
        const dnn::Network a = tests::makeRandomSpDag(seed);
        const dnn::Network b = tests::makeRandomSpDag(seed);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_EQ(a.describe(), b.describe());
        for (std::size_t l = 0; l < a.size(); ++l)
            EXPECT_EQ(a.preds(l), b.preds(l));
    }
}

TEST(DagDifferential, GeneratorMakesSeriesParallelNonChains)
{
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const dnn::Network net = tests::makeRandomSpDag(seed);
        EXPECT_FALSE(net.isChain()) << "seed " << seed;
        EXPECT_GE(net.size(), 3u) << "seed " << seed;
        EXPECT_LE(net.size(), 9u) << "seed " << seed;
        std::string reason;
        EXPECT_TRUE(core::isSeriesParallel(net, &reason))
            << "seed " << seed << ": " << reason;
    }
}

TEST(DagDifferential, RandomizedDagEnginesMatchOracleBitForBit)
{
    // The acceptance bar: >= 25 randomized series-parallel DAGs, all
    // four engines bit-identical to the flat enumeration oracle in
    // both plan and cost.
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const dnn::Network net = tests::makeRandomSpDag(seed);
        // Deeper hierarchy on the smaller nets; capped at 21 plan bits
        // so the 2^(H*L) oracle stays fast under the sanitizer job.
        const std::size_t h = net.size() <= 7 ? 3 : 2;
        ASSERT_LE(net.size() * h, 24u) << "seed " << seed;
        const CommConfig cfg = tests::makeRandomSpConfig(seed, h);
        const CommModel model(net, cfg);
        const core::OptimalPartitioner partitioner(model);

        const auto oracle = core::bruteForceHierarchical(model, h);
        for (const SearchEngine engine : kEngines) {
            SearchOptions opts;
            opts.engine = engine;
            const auto got = partitioner.partition(h, opts);
            EXPECT_EQ(got.plan, oracle.plan)
                << "seed " << seed << " engine " << (int)engine;
            EXPECT_EQ(got.commBytes, oracle.commBytes)
                << "seed " << seed << " engine " << (int)engine;
            EXPECT_EQ(got.commBytes, model.planBytes(got.plan))
                << "seed " << seed << " engine " << (int)engine;
            EXPECT_TRUE(got.stats.certifiedExact)
                << "seed " << seed << " engine " << (int)engine;
        }
    }
}

TEST(DagDifferential, ZooChainsAreBitIdenticalThroughDagApi)
{
    // Rebuilding any paper chain through the DAG constructor must be
    // a no-op: same wiring, same plans, same costs, for all engines.
    for (const dnn::Network &net : dnn::allModels()) {
        const dnn::Network dag = rebuildAsExplicitDag(net);
        EXPECT_TRUE(dag.isChain()) << net.name();
        EXPECT_EQ(dag.numEdges(), net.size() - 1) << net.name();
        EXPECT_EQ(dag.describe(), net.describe()) << net.name();

        const CommModel a(net, CommConfig{});
        const CommModel b(dag, CommConfig{});
        const core::OptimalPartitioner pa(a);
        const core::OptimalPartitioner pb(b);
        for (const SearchEngine engine : kEngines) {
            SearchOptions opts;
            opts.engine = engine;
            const auto ra = pa.partition(3, opts);
            const auto rb = pb.partition(3, opts);
            EXPECT_EQ(ra.plan, rb.plan)
                << net.name() << " engine " << (int)engine;
            EXPECT_EQ(ra.commBytes, rb.commBytes)
                << net.name() << " engine " << (int)engine;
        }
    }
}

TEST(DagDifferential, ZooChainSimulationsAreBitIdenticalThroughDagApi)
{
    // Same network, same simulator output — including the batched
    // evaluation path at 1, 2 and 8 threads.
    util::ThreadPool pool1(0), pool2(1), pool8(7);
    util::ThreadPool *pools[] = {&pool1, &pool2, &pool8};

    for (const dnn::Network &net : dnn::allModels()) {
        const dnn::Network dag = rebuildAsExplicitDag(net);
        const sim::SimConfig cfg;
        const sim::Evaluator ea(net, cfg);
        const sim::Evaluator eb(dag, cfg);

        const auto plan_a = ea.plan(core::Strategy::kHypar);
        const auto plan_b = eb.plan(core::Strategy::kHypar);
        EXPECT_EQ(plan_a, plan_b) << net.name();
        EXPECT_EQ(ea.commBytes(plan_a), eb.commBytes(plan_a))
            << net.name();
        expectSameMetrics(ea.evaluate(plan_a), eb.evaluate(plan_a),
                          net.name());

        const std::vector<core::HierarchicalPlan> plans = {
            core::makeDataParallelPlan(net, cfg.levels),
            core::makeModelParallelPlan(net, cfg.levels), plan_a};
        const auto want = ea.evaluateBatch(plans);
        for (util::ThreadPool *pool : pools) {
            const auto got = eb.evaluateBatch(plans, *pool);
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t i = 0; i < got.size(); ++i)
                expectSameMetrics(got[i], want[i],
                                  net.name() + " plan " +
                                      std::to_string(i));
        }
    }
}

TEST(DagDifferential, ZooDagFixturesSolveExactly)
{
    // The named fixtures resolve through modelByName, are genuine
    // series-parallel DAGs, and solve bit-identically to the oracle.
    for (const char *name : {"ResNet-block", "Inception-branch"}) {
        const dnn::Network net = dnn::modelByName(name);
        EXPECT_FALSE(net.isChain()) << name;
        std::string reason;
        EXPECT_TRUE(core::isSeriesParallel(net, &reason))
            << name << ": " << reason;

        const std::size_t h = 3;
        ASSERT_LE(net.size() * h, 24u) << name;
        const CommModel model(net, CommConfig{});
        const core::OptimalPartitioner partitioner(model);
        const auto oracle = core::bruteForceHierarchical(model, h);
        for (const SearchEngine engine : kEngines) {
            SearchOptions opts;
            opts.engine = engine;
            const auto got = partitioner.partition(h, opts);
            EXPECT_EQ(got.plan, oracle.plan)
                << name << " engine " << (int)engine;
            EXPECT_EQ(got.commBytes, oracle.commBytes)
                << name << " engine " << (int)engine;
        }
    }
}

TEST(DagDifferential, DagSimulationAndSweepFallback)
{
    // End-to-end on a DAG: the optimal plan simulates through the
    // topological task order, and the sweep fallback visits all 2^L
    // masks ascending with metrics equal to per-mask evaluation.
    sim::SimConfig cfg;
    cfg.levels = 2;
    const dnn::Network net = dnn::makeResNetBlock();
    const sim::Evaluator ev(net, cfg);

    const auto result =
        core::OptimalPartitioner(ev.model()).partition(cfg.levels);
    const auto metrics = ev.evaluate(result.plan);
    EXPECT_GT(metrics.stepSeconds, 0.0);
    EXPECT_GT(metrics.energy.totalJ(), 0.0);
    EXPECT_GT(metrics.commBytes, 0.0); // joins move bytes on edges

    const std::size_t L = net.size();
    std::uint64_t expected_mask = 0;
    ev.sweepNeighborhood(
        result.plan, 1,
        [&](std::uint64_t mask, const sim::StepMetrics &got) {
            EXPECT_EQ(mask, expected_mask++);
            core::HierarchicalPlan plan = result.plan;
            plan.levels[1] = core::levelPlanFromMask(mask, L);
            expectSameMetrics(got, ev.evaluate(plan),
                              "mask " + std::to_string(mask));
        });
    EXPECT_EQ(expected_mask, std::uint64_t{1} << L);
}

TEST(DagDifferential, NonSeriesParallelIsDetectedAndRejected)
{
    // The Wheatstone bridge is the canonical DAG that is *not*
    // two-terminal series-parallel: no series or parallel reduction
    // applies anywhere. The predicate must say so, and the joint
    // search must refuse with the decomposition's stuck-state reason.
    dnn::NetworkBuilder b("bridge", dnn::SampleShape{8, 1, 1});
    b.fc("n0", 8);
    b.fc("n1", 8).edge("n0", "n1");
    b.fc("n2", 8).edge("n0", "n2").edge("n1", "n2");
    b.fc("n3", 8).edge("n1", "n3").edge("n2", "n3");
    const dnn::Network net = b.build();
    EXPECT_FALSE(net.isChain());

    std::string reason;
    EXPECT_FALSE(core::isSeriesParallel(net, &reason));
    EXPECT_NE(reason.find("not two-terminal series-parallel"),
              std::string::npos)
        << reason;

    const CommModel model(net, CommConfig{});
    try {
        core::OptimalPartitioner(model).partition(2);
        FAIL() << "expected FatalError";
    } catch (const util::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "not two-terminal series-parallel"),
                  std::string::npos)
            << e.what();
    }
}
