/**
 * @file
 * Concurrent-serving differential: the tentpole guarantee of the
 * parallel batch executor is that every response byte is identical to
 * serial execution. This suite replays seeded randomized client
 * traffic — zoo models, inline specs, DAGs, malformed lines, control
 * ops, interleaved admission batches — through servers whose injected
 * pools have 0, 1, and 7 workers, and compares the transcripts
 * byte for byte. Only the `stats` op's cache directory (distinct per
 * server) and latency object (inherently timing-dependent) are masked.
 *
 * CI runs this by name under ASan/UBSan and TSan; the latter is the
 * gate that the per-session mutexes and serial counter folds actually
 * cover every shared write.
 */

#include <cstddef>
#include <filesystem>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "dnn/model_zoo.hh"
#include "serve/json.hh"
#include "serve/server.hh"
#include "util/thread_pool.hh"

namespace fs = std::filesystem;
using namespace hypar;

namespace {

/** Fresh per-test scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("hyparc_conc_" + tag + "_" +
                std::to_string(static_cast<unsigned>(::getpid()))))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

/** A DAG spec, escaped for embedding in a request line. */
const std::string kDagSpecJson = serve::jsonEscape(
    "network dag\n"
    "input 1 8 8\n"
    "conv stem 4 3 pad 1\n"
    "conv a 4 3 pad 1\n"
    "conv b 4 3 pad 1\n"
    "edge stem b\n"
    "conv join 4 3 pad 1\n"
    "edge a join\n"
    "edge b join\n"
    "fc f1 10\n");

/**
 * Mask the two legitimately server-specific parts of a `stats`
 * response: the cache directory value and the trailing latency
 * object. Every other byte of every response must match exactly.
 */
std::string
masked(std::string line)
{
    const std::size_t dir = line.find("\"dir\":\"");
    if (dir != std::string::npos) {
        std::size_t end = dir + 7;
        while (end < line.size() && line[end] != '"') {
            if (line[end] == '\\')
                ++end;
            ++end;
        }
        line.erase(dir + 7, end - (dir + 7));
    }
    const std::size_t lat = line.find(",\"latency\":");
    if (lat != std::string::npos)
        line.erase(lat); // trailing object (server.cc keeps it last)
    return line;
}

/**
 * Seeded traffic generator: one admission batch of mixed requests.
 * Everything is drawn from the same engine, so all servers replay the
 * exact same byte stream.
 */
std::vector<std::string>
makeBatch(std::mt19937 &rng, std::size_t size)
{
    static const char *models[] = {"Lenet-c", "SFC"};
    static const char *strategies[] = {"hypar", "dp", "mp", "owt",
                                       "optimal"};
    std::vector<std::string> batch;
    std::uniform_int_distribution<int> pick(0, 99);
    std::size_t id = 0;
    while (batch.size() < size) {
        const int roll = pick(rng);
        const std::string model = models[pick(rng) % 2];
        const std::string strategy = strategies[pick(rng) % 5];
        const std::size_t levels = 2 + pick(rng) % 2; // 2 or 3
        const std::string idField =
            "\"id\":\"r" + std::to_string(id++) + "\",";
        std::string head = "{" + idField + "\"op\":";
        if (roll < 35) {
            std::string line = head + "\"evaluate\",\"model\":\"" + model +
                               "\",\"strategy\":\"" + strategy +
                               "\",\"levels\":" + std::to_string(levels);
            if (pick(rng) < 25)
                line += ",\"steps\":3";
            if (pick(rng) < 30)
                line += ",\"batch\":128";
            batch.push_back(line + "}");
        } else if (roll < 55) {
            batch.push_back(head + "\"plan\",\"model\":\"" + model +
                            "\",\"strategy\":\"" + strategy +
                            "\",\"levels\":" + std::to_string(levels) +
                            "}");
        } else if (roll < 65) {
            batch.push_back(head + "\"sweep\",\"model\":\"" + model +
                            "\",\"levels\":" + std::to_string(levels) +
                            ",\"level\":" +
                            std::to_string(pick(rng) %
                                           static_cast<int>(levels)) +
                            "}");
        } else if (roll < 75) {
            // DAG traffic through an inline spec.
            batch.push_back(head + "\"evaluate\",\"spec\":\"" +
                            kDagSpecJson + "\",\"levels\":2}");
        } else if (roll < 80) {
            batch.push_back(head + "\"stats\"}");
        } else if (roll < 90) {
            // In-band errors: these must land in their slot, leave the
            // registry untouched, and never poison a neighbor.
            static const char *bad[] = {
                "not json",
                R"({"op":"plan"})",
                R"({"op":"evaluate","model":"Lenet-c","stratgy":"dp"})",
                R"({"op":"plan","model":"no-such-model"})",
                R"({"op":"sweep","model":"Lenet-c"})",
            };
            batch.push_back(bad[pick(rng) % 5]);
        } else {
            // Explicit-plan evaluate (all-DP bits, always valid).
            const dnn::Network net = dnn::modelByName(model);
            const std::string row(net.size(), pick(rng) < 50 ? '0' : '1');
            std::string plan = "[";
            for (std::size_t h = 0; h < levels; ++h)
                plan += std::string(h ? "," : "") + '"' + row + '"';
            plan += "]";
            batch.push_back(head + "\"evaluate\",\"model\":\"" + model +
                            "\",\"levels\":" + std::to_string(levels) +
                            ",\"plan\":" + plan + "}");
        }
    }
    return batch;
}

std::vector<std::string>
runBatch(serve::Server &server, const std::vector<std::string> &lines)
{
    std::ostringstream out;
    server.processBatch(lines, out);
    std::vector<std::string> responses;
    std::istringstream in(out.str());
    std::string line;
    while (std::getline(in, line))
        responses.push_back(line);
    return responses;
}

} // namespace

TEST(ServeConcurrent, RandomTrafficIsByteIdenticalAcrossThreadCounts)
{
    // Same seeded traffic through three servers that differ only in
    // pool size (0 workers = strictly serial inline execution). The
    // masked transcripts — and every observable counter — must agree.
    constexpr std::size_t kWorkers[] = {0, 1, 7};
    constexpr std::size_t kBatches = 8;
    constexpr std::size_t kBatchSize = 9;

    std::vector<std::vector<std::string>> traffic;
    std::mt19937 rng(20260808);
    for (std::size_t b = 0; b < kBatches; ++b)
        traffic.push_back(makeBatch(rng, kBatchSize));

    std::vector<std::vector<std::string>> transcripts;
    std::vector<serve::ServeStats> stats;
    for (const std::size_t workers : kWorkers) {
        TempDir tmp("w" + std::to_string(workers));
        util::ThreadPool pool(workers);
        serve::ServeOptions opts;
        opts.cacheDir = tmp.path;
        opts.pool = &pool;
        serve::Server server(opts);
        std::vector<std::string> transcript;
        for (const std::vector<std::string> &batch : traffic)
            for (std::string &line : runBatch(server, batch))
                transcript.push_back(masked(std::move(line)));
        transcripts.push_back(std::move(transcript));
        stats.push_back(server.stats());
    }

    ASSERT_EQ(transcripts[0].size(), kBatches * kBatchSize);
    for (std::size_t s = 1; s < transcripts.size(); ++s) {
        ASSERT_EQ(transcripts[s].size(), transcripts[0].size());
        for (std::size_t i = 0; i < transcripts[0].size(); ++i)
            EXPECT_EQ(transcripts[s][i], transcripts[0][i])
                << "response " << i << " diverged at "
                << kWorkers[s] << " workers";
        EXPECT_EQ(stats[s].requests, stats[0].requests);
        EXPECT_EQ(stats[s].errors, stats[0].errors);
        EXPECT_EQ(stats[s].coalesced, stats[0].coalesced);
    }
    // The traffic mix actually exercised the interesting paths.
    EXPECT_GT(stats[0].errors, 0u);
    EXPECT_GT(stats[0].coalesced, 0u);
}

TEST(ServeConcurrent, MemoryBudgetedRegistryStaysDeterministic)
{
    // Byte-budget eviction happens at the end-of-batch serial point,
    // so it too must be invisible to the thread count.
    constexpr std::size_t kWorkers[] = {0, 7};

    std::vector<std::vector<std::string>> traffic;
    std::mt19937 rng(42);
    for (std::size_t b = 0; b < 6; ++b)
        traffic.push_back(makeBatch(rng, 6));

    std::vector<std::vector<std::string>> transcripts;
    std::vector<std::size_t> built;
    for (const std::size_t workers : kWorkers) {
        TempDir tmp("budget_w" + std::to_string(workers));
        util::ThreadPool pool(workers);
        serve::ServeOptions opts;
        opts.cacheDir = tmp.path;
        opts.pool = &pool;
        opts.maxSessionBytes = 1; // evict down to one session per batch
        serve::Server server(opts);
        std::vector<std::string> transcript;
        for (const std::vector<std::string> &batch : traffic)
            for (std::string &line : runBatch(server, batch))
                transcript.push_back(masked(std::move(line)));
        EXPECT_EQ(server.sessions().size(), 1u);
        transcripts.push_back(std::move(transcript));
        built.push_back(server.sessions().built());
    }
    EXPECT_EQ(transcripts[0], transcripts[1]);
    EXPECT_EQ(built[0], built[1]);
    EXPECT_GT(built[0], 6u); // the tight budget really forced rebuilds
}

TEST(ServeConcurrent, SharedContextsSerializeOnTheSessionMutex)
{
    // A batch whose every request shares one context is the worst case
    // for the per-session lock: one group, fully serialized, still
    // byte-identical and still coalescing its single-step evaluates.
    TempDir tmpSerial("shared_serial");
    TempDir tmpParallel("shared_parallel");
    util::ThreadPool serial(0);
    util::ThreadPool parallel(7);

    std::vector<std::string> batch;
    for (int i = 0; i < 12; ++i)
        batch.push_back(
            R"({"id":"c)" + std::to_string(i) +
            R"(","op":"evaluate","model":"Lenet-c"})");

    serve::ServeOptions a;
    a.cacheDir = tmpSerial.path;
    a.pool = &serial;
    serve::Server serverA(a);
    serve::ServeOptions b;
    b.cacheDir = tmpParallel.path;
    b.pool = &parallel;
    serve::Server serverB(b);

    const std::vector<std::string> outA = runBatch(serverA, batch);
    const std::vector<std::string> outB = runBatch(serverB, batch);
    EXPECT_EQ(outA, outB);
    EXPECT_EQ(serverA.stats().coalesced, 12u);
    EXPECT_EQ(serverB.stats().coalesced, 12u);
    EXPECT_EQ(serverB.sessions().built(), 1u);
    for (const std::string &line : outB) {
        const serve::JsonValue v = serve::JsonValue::parse(line);
        EXPECT_TRUE(v.find("ok")->asBool()) << line;
        EXPECT_EQ(v.find("batched")->asNumber(), 12.0);
    }
}
