/**
 * @file
 * Differential tests for the batched / incremental design-space sweep
 * paths of sim::Evaluator:
 *
 *  - evaluateBatch must be *bit-identical* (EXPECT_EQ on every
 *    StepMetrics field, no ULP tolerance) to back-to-back evaluate()
 *    calls, across 1/2/8-thread pools, all three TopologyKinds, and
 *    overlapGradComm on/off;
 *  - sweepNeighborhood's incremental replay must equal a full
 *    evaluate() rescoring of every substituted mask — which covers
 *    every single-bit flip of the swept level (the oracle pattern of
 *    test_equivalence_random.cc, lifted to the simulator) — in both
 *    the serial-chain mode and the two-tape overlap mode;
 *  - the strategy-sweep overload must match evaluate(Strategy).
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/brute_force.hh"
#include "core/plan.hh"
#include "dnn/model_zoo.hh"
#include "sim/evaluator.hh"
#include "util/thread_pool.hh"

using namespace hypar;
using core::HierarchicalPlan;
using core::Parallelism;
using sim::Evaluator;
using sim::SimConfig;
using sim::StepMetrics;
using sim::TopologyKind;

namespace {

/** Uniformly random hierarchical plan for `layers` x `levels`. */
HierarchicalPlan
randomPlan(std::size_t layers, std::size_t levels, std::mt19937 &rng)
{
    std::bernoulli_distribution coin(0.5);
    HierarchicalPlan plan;
    plan.levels.assign(levels,
                       core::LevelPlan(layers, Parallelism::kData));
    for (auto &level : plan.levels)
        for (auto &p : level)
            if (coin(rng))
                p = Parallelism::kModel;
    return plan;
}

/** Assert exact equality of every StepMetrics field, with context. */
void
expectIdentical(const StepMetrics &got, const StepMetrics &want,
                const std::string &context)
{
    EXPECT_EQ(got.stepSeconds, want.stepSeconds) << context;
    EXPECT_EQ(got.computeBusySeconds, want.computeBusySeconds) << context;
    EXPECT_EQ(got.networkBusySeconds, want.networkBusySeconds) << context;
    EXPECT_EQ(got.commBytes, want.commBytes) << context;
    EXPECT_EQ(got.phases.forward, want.phases.forward) << context;
    EXPECT_EQ(got.phases.backward, want.phases.backward) << context;
    EXPECT_EQ(got.phases.gradient, want.phases.gradient) << context;
    EXPECT_EQ(got.energy.computeJ, want.energy.computeJ) << context;
    EXPECT_EQ(got.energy.sramJ, want.energy.sramJ) << context;
    EXPECT_EQ(got.energy.dramJ, want.energy.dramJ) << context;
    EXPECT_EQ(got.energy.commJ, want.energy.commJ) << context;
    // The defaulted operator== must agree with the field-wise check.
    EXPECT_TRUE(got == want) << context;
}

} // namespace

TEST(EvaluatorBatch, MatchesSequentialAcrossThreadsAndTopologies)
{
    std::mt19937 rng(1234);
    // 1 / 2 / 8 threads: a 0-worker pool degrades to a serial inline
    // loop, so all three exercise genuinely different chunk grids.
    util::ThreadPool pool1(0), pool2(1), pool8(7);
    util::ThreadPool *pools[] = {&pool1, &pool2, &pool8};

    for (const char *name : {"Lenet-c", "SFC", "AlexNet"}) {
        const dnn::Network net = dnn::modelByName(name);
        for (const TopologyKind kind :
             {TopologyKind::kHTree, TopologyKind::kTorus,
              TopologyKind::kMesh}) {
            for (const bool overlap : {false, true}) {
                SimConfig cfg;
                cfg.topology = kind;
                cfg.options.overlapGradComm = overlap;
                const Evaluator ev(net, cfg);

                std::vector<HierarchicalPlan> plans;
                for (int i = 0; i < 12; ++i)
                    plans.push_back(
                        randomPlan(net.size(), cfg.levels, rng));
                plans.push_back(ev.plan(core::Strategy::kHypar));
                plans.push_back(ev.plan(core::Strategy::kDataParallel));

                std::vector<StepMetrics> expected;
                for (const auto &plan : plans)
                    expected.push_back(ev.evaluate(plan));

                for (util::ThreadPool *pool : pools) {
                    const auto got = ev.evaluateBatch(plans, *pool);
                    ASSERT_EQ(got.size(), expected.size());
                    for (std::size_t i = 0; i < got.size(); ++i) {
                        expectIdentical(
                            got[i], expected[i],
                            std::string(name) + " topology " +
                                std::to_string(static_cast<int>(kind)) +
                                " overlap " +
                                std::to_string(overlap) + " threads " +
                                std::to_string(pool->parallelism()) +
                                " plan " + std::to_string(i));
                    }
                }
            }
        }
    }
}

TEST(EvaluatorBatch, StrategyOverloadMatchesEvaluate)
{
    const dnn::Network net = dnn::modelByName("AlexNet");
    const Evaluator ev(net, SimConfig{});
    const std::vector<core::Strategy> strategies = {
        core::Strategy::kDataParallel, core::Strategy::kModelParallel,
        core::Strategy::kOneWeirdTrick, core::Strategy::kHypar};

    const auto got = ev.evaluateBatch(strategies);
    ASSERT_EQ(got.size(), strategies.size());
    for (std::size_t i = 0; i < strategies.size(); ++i)
        expectIdentical(got[i], ev.evaluate(strategies[i]),
                        "strategy " + std::to_string(i));
}

TEST(EvaluatorBatch, EmptyBatchIsEmpty)
{
    const Evaluator ev(dnn::makeLenetC(), SimConfig{});
    EXPECT_TRUE(
        ev.evaluateBatch(std::span<const HierarchicalPlan>{}).empty());
}

// The Fig. 9 property: for every hierarchy level of LeNet at H = 4,
// sweepNeighborhood's incremental metrics equal a full evaluate() of
// the substituted plan, for all 2^L masks — i.e. for every single-bit
// flip from any mask, both paths move in lockstep. All topologies.
TEST(EvaluatorBatch, SweepNeighborhoodMatchesFullRescoreOnLenet)
{
    const dnn::Network lenet = dnn::makeLenetC();
    for (const TopologyKind kind :
         {TopologyKind::kHTree, TopologyKind::kTorus,
          TopologyKind::kMesh}) {
        SimConfig cfg;
        cfg.topology = kind;
        const Evaluator ev(lenet, cfg);
        const auto base = ev.plan(core::Strategy::kHypar);

        for (std::size_t level = 0; level < cfg.levels; ++level) {
            // Oracle: substitute every mask and fully rescore.
            std::vector<StepMetrics> expected(
                std::size_t{1} << lenet.size());
            core::sweepLevelMasks(
                base, level,
                [&](std::uint64_t mask, const HierarchicalPlan &plan) {
                    expected[mask] = ev.evaluate(plan);
                });

            std::uint64_t next_mask = 0;
            ev.sweepNeighborhood(
                base, level,
                [&](std::uint64_t mask, const StepMetrics &m) {
                    EXPECT_EQ(mask, next_mask++) << "visit order";
                    expectIdentical(
                        m, expected[mask],
                        "topology " +
                            std::to_string(static_cast<int>(kind)) +
                            " level " + std::to_string(level) +
                            " mask " + std::to_string(mask));
                });
            EXPECT_EQ(next_mask, expected.size());
        }
    }
}

// Randomized bases: the incremental path must hold from any starting
// plan, not just HyPar's (the swept level's base content is irrelevant,
// the other levels' content feeds the scaling tables).
TEST(EvaluatorBatch, SweepNeighborhoodMatchesFullRescoreRandomized)
{
    std::mt19937 rng(99);
    const dnn::Network net = dnn::modelByName("SFC");
    SimConfig cfg;
    cfg.levels = 3;
    const Evaluator ev(net, cfg);

    for (int trial = 0; trial < 8; ++trial) {
        const auto base = randomPlan(net.size(), cfg.levels, rng);
        const std::size_t level = std::uniform_int_distribution<
            std::size_t>(0, cfg.levels - 1)(rng);

        std::vector<StepMetrics> expected(std::size_t{1} << net.size());
        core::sweepLevelMasks(
            base, level,
            [&](std::uint64_t mask, const HierarchicalPlan &plan) {
                expected[mask] = ev.evaluate(plan);
            });
        ev.sweepNeighborhood(
            base, level, [&](std::uint64_t mask, const StepMetrics &m) {
                expectIdentical(m, expected[mask],
                                "trial " + std::to_string(trial) +
                                    " mask " + std::to_string(mask));
            });
    }
}

// The gradient-overlap fast path: the two-tape incremental replay must
// be bit-identical to per-mask TrainingSimulator::simulate on the full
// Fig. 9 LeNet mask grid — every level, every mask, every topology
// (the PR 5 acceptance criterion; the fallback is gone for overlap).
TEST(EvaluatorBatch, SweepNeighborhoodOverlapMatchesFullRescoreOnLenet)
{
    const dnn::Network lenet = dnn::makeLenetC();
    for (const TopologyKind kind :
         {TopologyKind::kHTree, TopologyKind::kTorus,
          TopologyKind::kMesh}) {
        SimConfig cfg;
        cfg.topology = kind;
        cfg.options.overlapGradComm = true;
        const Evaluator ev(lenet, cfg);
        const auto base = ev.plan(core::Strategy::kHypar);

        for (std::size_t level = 0; level < cfg.levels; ++level) {
            std::vector<StepMetrics> expected(
                std::size_t{1} << lenet.size());
            core::sweepLevelMasks(
                base, level,
                [&](std::uint64_t mask, const HierarchicalPlan &plan) {
                    expected[mask] = ev.evaluate(plan);
                });

            std::uint64_t next_mask = 0;
            ev.sweepNeighborhood(
                base, level,
                [&](std::uint64_t mask, const StepMetrics &m) {
                    EXPECT_EQ(mask, next_mask++) << "visit order";
                    expectIdentical(
                        m, expected[mask],
                        "overlap topology " +
                            std::to_string(static_cast<int>(kind)) +
                            " level " + std::to_string(level) +
                            " mask " + std::to_string(mask));
                });
            EXPECT_EQ(next_mask, expected.size());
        }
    }
}

// The full Fig. 9 grid shape under overlap: the outer H1 axis
// substituted into a scaffold, the inner H4 axis swept incrementally —
// exactly what bench_fig9_lenet_space and `hyparc sweep --overlap`
// run — must match per-mask evaluate() at every (H1, H4) point.
TEST(EvaluatorBatch, SweepNeighborhoodOverlapMatchesFig9Grid)
{
    const dnn::Network lenet = dnn::makeLenetC();
    SimConfig cfg;
    cfg.options.overlapGradComm = true;
    const Evaluator ev(lenet, cfg);
    HierarchicalPlan scaffold = ev.plan(core::Strategy::kHypar);

    const std::uint64_t masks = std::uint64_t{1} << lenet.size();
    for (std::uint64_t h1 = 0; h1 < masks; ++h1) {
        scaffold.levels[0] =
            core::levelPlanFromMask(h1, lenet.size());
        std::vector<StepMetrics> expected(masks);
        core::sweepLevelMasks(
            scaffold, 3,
            [&](std::uint64_t mask, const HierarchicalPlan &plan) {
                expected[mask] = ev.evaluate(plan);
            });
        ev.sweepNeighborhood(
            scaffold, 3, [&](std::uint64_t mask, const StepMetrics &m) {
                expectIdentical(m, expected[mask],
                                "fig9 H1=" + std::to_string(h1) +
                                    " H4=" + std::to_string(mask));
            });
    }
}

// Randomized bases and swept levels with overlap on: the two-tape
// replay must hold from any starting plan, like the serial-mode
// property above.
TEST(EvaluatorBatch, SweepNeighborhoodOverlapMatchesRandomized)
{
    std::mt19937 rng(4242);
    for (const char *name : {"SFC", "Lenet-c"}) {
        const dnn::Network net = dnn::modelByName(name);
        SimConfig cfg;
        cfg.levels = 3;
        cfg.options.overlapGradComm = true;
        const Evaluator ev(net, cfg);

        for (int trial = 0; trial < 6; ++trial) {
            const auto base = randomPlan(net.size(), cfg.levels, rng);
            const std::size_t level = std::uniform_int_distribution<
                std::size_t>(0, cfg.levels - 1)(rng);

            std::vector<StepMetrics> expected(std::size_t{1}
                                              << net.size());
            core::sweepLevelMasks(
                base, level,
                [&](std::uint64_t mask, const HierarchicalPlan &plan) {
                    expected[mask] = ev.evaluate(plan);
                });
            ev.sweepNeighborhood(
                base, level,
                [&](std::uint64_t mask, const StepMetrics &m) {
                    expectIdentical(m, expected[mask],
                                    std::string(name) + " trial " +
                                        std::to_string(trial) +
                                        " mask " +
                                        std::to_string(mask));
                });
        }
    }
}

// recordTrace is the one remaining fallback: the sweep must still
// agree with per-mask evaluation even when tracing (and overlapping)
// at the same time. The trace/sweep interaction itself is pinned in
// tests/test_overlap_schedule.cc.
TEST(EvaluatorBatch, SweepNeighborhoodRecordTraceFallsBack)
{
    const dnn::Network lenet = dnn::makeLenetC();
    SimConfig cfg;
    cfg.options.overlapGradComm = true;
    cfg.options.recordTrace = true;
    const Evaluator ev(lenet, cfg);
    const auto base = ev.plan(core::Strategy::kHypar);

    std::vector<StepMetrics> expected(std::size_t{1} << lenet.size());
    core::sweepLevelMasks(
        base, 3, [&](std::uint64_t mask, const HierarchicalPlan &plan) {
            expected[mask] = ev.evaluate(plan);
        });
    std::size_t visited = 0;
    ev.sweepNeighborhood(base, 3,
                         [&](std::uint64_t mask, const StepMetrics &m) {
                             expectIdentical(m, expected[mask],
                                             "trace mask " +
                                                 std::to_string(mask));
                             ++visited;
                         });
    EXPECT_EQ(visited, expected.size());
}
