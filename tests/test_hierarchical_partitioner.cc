/**
 * @file
 * Tests for Algorithm 2: recursion accounting (com = com_h + 2*com_n),
 * consistency with CommModel::planBytes, level-count handling, and
 * comparison against full exhaustive search on tiny networks.
 */

#include <gtest/gtest.h>

#include "core/brute_force.hh"
#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"
#include "util/logging.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::HierarchicalPartitioner;
using core::Parallelism;

TEST(HierarchicalPartitioner, ZeroLevelsIsEmptyAndFree)
{
    dnn::Network net = dnn::makeLenetC();
    CommModel model(net, CommConfig{});
    const auto result = HierarchicalPartitioner(model).partition(0);
    EXPECT_EQ(result.plan.numLevels(), 0u);
    EXPECT_DOUBLE_EQ(result.commBytes, 0.0);
    EXPECT_EQ(result.plan.numAccelerators(), 1u);
}

TEST(HierarchicalPartitioner, CostMatchesPlanBytes)
{
    // The recursion's com must equal replaying the plan through the
    // communication model's sum over levels.
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        for (std::size_t levels : {1u, 2u, 4u}) {
            const auto result =
                HierarchicalPartitioner(model).partition(levels);
            EXPECT_EQ(result.plan.numLevels(), levels) << net.name();
            EXPECT_DOUBLE_EQ(result.commBytes,
                             model.planBytes(result.plan))
                << net.name() << " H=" << levels;
        }
    }
}

TEST(HierarchicalPartitioner, GreedyMatchesExhaustiveOnTinyNets)
{
    // For a 2-layer network and up to 3 levels the full (2^L)^H space
    // is 64 plans; the greedy level-by-level optimum must match the
    // global optimum here (each level's cost dominates its children's
    // options in these constructions).
    const std::vector<dnn::Network> nets = {
        dnn::NetworkBuilder("t1", {128, 1, 1})
            .fc("a", 512)
            .fc("b", 64)
            .build(),
        dnn::NetworkBuilder("t2", {20, 12, 12})
            .conv("a", 50, 5)
            .fc("b", 10)
            .build(),
    };
    for (const auto &net : nets) {
        CommConfig cfg;
        cfg.batch = 32;
        CommModel model(net, cfg);
        for (std::size_t levels : {1u, 2u, 3u}) {
            const auto greedy =
                HierarchicalPartitioner(model).partition(levels);
            const auto full =
                core::bruteForceHierarchical(model, levels);
            EXPECT_DOUBLE_EQ(greedy.commBytes, full.commBytes)
                << net.name() << " H=" << levels;
        }
    }
}

TEST(HierarchicalPartitioner, NeverWorseThanUniformBaselines)
{
    // Each level's DP sees all-dp and all-mp as candidates, so the
    // greedy plan can never cost more than the uniform defaults.
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        for (std::size_t levels : {1u, 2u, 3u, 4u, 5u, 6u}) {
            const auto hypar =
                HierarchicalPartitioner(model).partition(levels);
            const double dp = model.planBytes(
                core::makeDataParallelPlan(net, levels));
            const double mp = model.planBytes(
                core::makeModelParallelPlan(net, levels));
            const double owt = model.planBytes(
                core::makeOneWeirdTrickPlan(net, levels));
            EXPECT_LE(hypar.commBytes, dp) << net.name() << " H=" << levels;
            EXPECT_LE(hypar.commBytes, mp) << net.name() << " H=" << levels;
            EXPECT_LE(hypar.commBytes, owt)
                << net.name() << " H=" << levels;
        }
    }
}

TEST(HierarchicalPartitioner, DeterministicAcrossRuns)
{
    dnn::Network net = dnn::makeAlexNet();
    CommModel model(net, CommConfig{});
    const auto a = HierarchicalPartitioner(model).partition(4);
    const auto b = HierarchicalPartitioner(model).partition(4);
    EXPECT_EQ(a.plan, b.plan);
    EXPECT_DOUBLE_EQ(a.commBytes, b.commBytes);
}

TEST(HierarchicalPartitioner, RejectsAbsurdDepth)
{
    dnn::Network net = dnn::makeLenetC();
    CommModel model(net, CommConfig{});
    EXPECT_THROW((void)HierarchicalPartitioner(model).partition(64),
                 util::FatalError);
}

TEST(HierarchicalPartitioner, ScalingAblationChangesSfcPlan)
{
    // Under the kNone ablation every level sees identical amounts, so
    // SFC's fc1 stays mp at every level -- the paper's fc1@H3 flip is
    // a direct consequence of partitioned scaling.
    dnn::Network sfc = dnn::makeSfc();
    CommConfig cfg;
    cfg.scaling = CommConfig::Scaling::kNone;
    CommModel model(sfc, cfg);
    const auto result = HierarchicalPartitioner(model).partition(4);
    for (const auto &level : result.plan.levels)
        EXPECT_EQ(level[0], Parallelism::kModel);
}
