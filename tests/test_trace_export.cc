/**
 * @file
 * Tests for the Chrome trace-event exporter: event structure, track
 * routing, escaping, and timestamps.
 */

#include <gtest/gtest.h>

#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "noc/htree.hh"
#include "sim/trace_export.hh"
#include "sim/training_sim.hh"

using namespace hypar;

namespace {

std::vector<sim::TraceEntry>
simulateLenet()
{
    dnn::Network net = dnn::makeLenetC();
    core::CommModel model(net, core::CommConfig{});
    noc::HTreeTopology topo(4, noc::TopologyConfig{});
    sim::SimOptions opts;
    opts.recordTrace = true;
    sim::TrainingSimulator simulator(model, arch::AcceleratorConfig{},
                                     arch::EnergyModel{}, topo, opts);
    (void)simulator.simulate(core::makeHyparPlan(model, 4));
    return simulator.lastTrace();
}

std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++count;
    return count;
}

} // namespace

TEST(TraceExport, EmitsOneEventPerTask)
{
    const auto trace = simulateLenet();
    const std::string json = sim::chromeTraceJson(trace);
    // Complete-duration events: one "ph":"X" per task.
    EXPECT_EQ(countOccurrences(json, R"("ph":"X")"), trace.size());
    // Plus the three metadata records.
    EXPECT_EQ(countOccurrences(json, R"("ph":"M")"), 3u);
}

TEST(TraceExport, RoutesComputeAndNetworkTracks)
{
    const auto trace = simulateLenet();
    const std::string json = sim::chromeTraceJson(trace);

    // Compute tasks on tid 0, exchanges on tid 1.
    EXPECT_NE(json.find(R"("name":"fwd:conv1","ph":"X","pid":0,"tid":0)"),
              std::string::npos);
    EXPECT_NE(json.find(R"("name":"gradx:conv1@H1","ph":"X","pid":0,)"
                        R"("tid":1)"),
              std::string::npos);
}

TEST(TraceExport, MicrosecondTimestampsAreOrdered)
{
    const auto trace = simulateLenet();
    ASSERT_FALSE(trace.empty());
    const std::string json = sim::chromeTraceJson(trace);
    // First event starts at ts 0.
    EXPECT_NE(json.find(R"("ts":0,)"), std::string::npos);
    // Durations are non-negative ("dur":-" never appears).
    EXPECT_EQ(json.find(R"("dur":-)"), std::string::npos);
}

TEST(TraceExport, EscapesLabels)
{
    std::vector<sim::TraceEntry> trace{
        {0.0, 1.0, R"(weird"label\with specials)"}};
    const std::string json = sim::chromeTraceJson(trace);
    EXPECT_NE(json.find(R"(weird\"label\\with specials)"),
              std::string::npos);
}

TEST(TraceExport, EmptyTraceIsValidJsonArray)
{
    const std::string json = sim::chromeTraceJson({});
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("]"), std::string::npos);
    EXPECT_EQ(countOccurrences(json, R"("ph":"X")"), 0u);
}
