/**
 * @file
 * Tests for the network spec parser: grammar coverage, error reporting
 * with line numbers, and round-tripping the whole model zoo through
 * toSpec -> parse.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "dnn/spec_parser.hh"
#include "util/logging.hh"

using namespace hypar;
using dnn::parseNetworkSpec;

TEST(SpecParser, ParsesMinimalNetwork)
{
    const auto net = parseNetworkSpec(
        "network tiny\n"
        "input 1 8 8\n"
        "conv c1 4 3\n"
        "fc f1 10\n");
    EXPECT_EQ(net.name(), "tiny");
    EXPECT_EQ(net.size(), 2u);
    EXPECT_EQ(net.layer(0).outChannels, 4u);
    EXPECT_EQ(net.layer(1).outChannels, 10u);
}

TEST(SpecParser, InlineAndStandaloneAttributes)
{
    const auto net = parseNetworkSpec(
        "network attrs\n"
        "input 3 32 32\n"
        "conv c1 16 5 stride 1 pad 2 pool 2\n"
        "conv c2 32 3\n"
        "pad 1\n"
        "pool 3 2\n"
        "fc f1 10 act none\n");
    EXPECT_EQ(net.layer(0).pad, 2u);
    EXPECT_EQ(net.layer(0).pool.window, 2u);
    EXPECT_EQ(net.layer(1).pad, 1u);
    EXPECT_EQ(net.layer(1).pool.window, 3u);
    EXPECT_EQ(net.layer(1).pool.stride, 2u);
    EXPECT_EQ(net.layer(2).act, dnn::Activation::kNone);
}

TEST(SpecParser, CommentsAndBlankLines)
{
    const auto net = parseNetworkSpec(
        "# a comment\n"
        "network c\n"
        "\n"
        "input 1 28 28   # input shape\n"
        "fc f1 10 # trailing\n");
    EXPECT_EQ(net.size(), 1u);
}

TEST(SpecParser, ErrorsCarryLineNumbers)
{
    try {
        parseNetworkSpec("network x\ninput 1 8 8\nconv broken\n");
        FAIL() << "expected FatalError";
    } catch (const util::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(SpecParser, RejectsMalformedInput)
{
    // Missing header directives.
    EXPECT_THROW(parseNetworkSpec("fc f1 10\n"), util::FatalError);
    EXPECT_THROW(parseNetworkSpec("network x\nfc f1 10\n"),
                 util::FatalError);
    // Bad numbers / unknown tokens.
    EXPECT_THROW(parseNetworkSpec("network x\ninput 1 8 eight\n"),
                 util::FatalError);
    EXPECT_THROW(
        parseNetworkSpec("network x\ninput 1 8 8\nconvolution c 4 3\n"),
        util::FatalError);
    EXPECT_THROW(
        parseNetworkSpec("network x\ninput 1 8 8\nfc f 10 stride 2\n"),
        util::FatalError);
    // Attribute before any layer.
    EXPECT_THROW(parseNetworkSpec("network x\ninput 1 8 8\npool 2\n"),
                 util::FatalError);
    // Attribute missing its value.
    EXPECT_THROW(
        parseNetworkSpec("network x\ninput 1 8 8\nconv c 4 3 pad\n"),
        util::FatalError);
    // Unknown activation.
    EXPECT_THROW(
        parseNetworkSpec("network x\ninput 1 8 8\nfc f 4 act gelu\n"),
        util::FatalError);
}

TEST(SpecParser, ZooRoundTripsExactly)
{
    for (const auto &original : dnn::allModels()) {
        const auto reparsed = parseNetworkSpec(dnn::toSpec(original));
        ASSERT_EQ(reparsed.size(), original.size()) << original.name();
        EXPECT_EQ(reparsed.name(), original.name());
        EXPECT_EQ(reparsed.inputShape(), original.inputShape());
        for (std::size_t l = 0; l < original.size(); ++l) {
            const auto &a = original.layer(l);
            const auto &b = reparsed.layer(l);
            EXPECT_EQ(a.name, b.name);
            EXPECT_EQ(a.kind, b.kind);
            EXPECT_EQ(a.outChannels, b.outChannels);
            EXPECT_EQ(a.kernel, b.kernel);
            EXPECT_EQ(a.stride, b.stride);
            EXPECT_EQ(a.pad, b.pad);
            EXPECT_EQ(a.pool.window, b.pool.window);
            EXPECT_EQ(a.pool.stride, b.pool.stride);
            EXPECT_EQ(a.act, b.act);
            EXPECT_EQ(a.outPooled, b.outPooled);
        }
        EXPECT_EQ(reparsed.totalParamElems(), original.totalParamElems());
    }
}

TEST(SpecParser, MissingFileIsFatal)
{
    EXPECT_THROW(dnn::parseNetworkSpecFile("/nonexistent/net.hp"),
                 util::FatalError);
}
