/**
 * @file
 * Tests for the network spec parser: grammar coverage, error reporting
 * with line numbers, and round-tripping the whole model zoo through
 * toSpec -> parse.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "dnn/spec_parser.hh"
#include "util/logging.hh"

using namespace hypar;
using dnn::parseNetworkSpec;

TEST(SpecParser, ParsesMinimalNetwork)
{
    const auto net = parseNetworkSpec(
        "network tiny\n"
        "input 1 8 8\n"
        "conv c1 4 3\n"
        "fc f1 10\n");
    EXPECT_EQ(net.name(), "tiny");
    EXPECT_EQ(net.size(), 2u);
    EXPECT_EQ(net.layer(0).outChannels, 4u);
    EXPECT_EQ(net.layer(1).outChannels, 10u);
}

TEST(SpecParser, InlineAndStandaloneAttributes)
{
    const auto net = parseNetworkSpec(
        "network attrs\n"
        "input 3 32 32\n"
        "conv c1 16 5 stride 1 pad 2 pool 2\n"
        "conv c2 32 3\n"
        "pad 1\n"
        "pool 3 2\n"
        "fc f1 10 act none\n");
    EXPECT_EQ(net.layer(0).pad, 2u);
    EXPECT_EQ(net.layer(0).pool.window, 2u);
    EXPECT_EQ(net.layer(1).pad, 1u);
    EXPECT_EQ(net.layer(1).pool.window, 3u);
    EXPECT_EQ(net.layer(1).pool.stride, 2u);
    EXPECT_EQ(net.layer(2).act, dnn::Activation::kNone);
}

TEST(SpecParser, CommentsAndBlankLines)
{
    const auto net = parseNetworkSpec(
        "# a comment\n"
        "network c\n"
        "\n"
        "input 1 28 28   # input shape\n"
        "fc f1 10 # trailing\n");
    EXPECT_EQ(net.size(), 1u);
}

TEST(SpecParser, ErrorsCarryLineNumbers)
{
    try {
        parseNetworkSpec("network x\ninput 1 8 8\nconv broken\n");
        FAIL() << "expected FatalError";
    } catch (const util::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(SpecParser, RejectsMalformedInput)
{
    // Missing header directives.
    EXPECT_THROW(parseNetworkSpec("fc f1 10\n"), util::FatalError);
    EXPECT_THROW(parseNetworkSpec("network x\nfc f1 10\n"),
                 util::FatalError);
    // Bad numbers / unknown tokens.
    EXPECT_THROW(parseNetworkSpec("network x\ninput 1 8 eight\n"),
                 util::FatalError);
    EXPECT_THROW(
        parseNetworkSpec("network x\ninput 1 8 8\nconvolution c 4 3\n"),
        util::FatalError);
    EXPECT_THROW(
        parseNetworkSpec("network x\ninput 1 8 8\nfc f 10 stride 2\n"),
        util::FatalError);
    // Attribute before any layer.
    EXPECT_THROW(parseNetworkSpec("network x\ninput 1 8 8\npool 2\n"),
                 util::FatalError);
    // Attribute missing its value.
    EXPECT_THROW(
        parseNetworkSpec("network x\ninput 1 8 8\nconv c 4 3 pad\n"),
        util::FatalError);
    // Unknown activation.
    EXPECT_THROW(
        parseNetworkSpec("network x\ninput 1 8 8\nfc f 4 act gelu\n"),
        util::FatalError);
}

TEST(SpecParser, ZooRoundTripsExactly)
{
    for (const auto &original : dnn::allModels()) {
        const auto reparsed = parseNetworkSpec(dnn::toSpec(original));
        ASSERT_EQ(reparsed.size(), original.size()) << original.name();
        EXPECT_EQ(reparsed.name(), original.name());
        EXPECT_EQ(reparsed.inputShape(), original.inputShape());
        for (std::size_t l = 0; l < original.size(); ++l) {
            const auto &a = original.layer(l);
            const auto &b = reparsed.layer(l);
            EXPECT_EQ(a.name, b.name);
            EXPECT_EQ(a.kind, b.kind);
            EXPECT_EQ(a.outChannels, b.outChannels);
            EXPECT_EQ(a.kernel, b.kernel);
            EXPECT_EQ(a.stride, b.stride);
            EXPECT_EQ(a.pad, b.pad);
            EXPECT_EQ(a.pool.window, b.pool.window);
            EXPECT_EQ(a.pool.stride, b.pool.stride);
            EXPECT_EQ(a.act, b.act);
            EXPECT_EQ(a.outPooled, b.outPooled);
        }
        EXPECT_EQ(reparsed.totalParamElems(), original.totalParamElems());
    }
}

TEST(SpecParser, MissingFileIsFatal)
{
    EXPECT_THROW(dnn::parseNetworkSpecFile("/nonexistent/net.hp"),
                 util::FatalError);
}

// ---- DAG specs ------------------------------------------------------------

namespace {

/** A diamond: stem feeds two parallel convs summed at the join. */
const char *kDiamondSpec =
    "network diamond\n"
    "input 1 8 8\n"
    "conv stem 4 3 pad 1\n"
    "conv a 4 3 pad 1\n"
    "conv b 4 3 pad 1\n"
    "edge stem b\n"
    "conv join 4 3 pad 1\n"
    "edge a join\n"
    "edge b join\n"
    "fc f1 10\n";

void
expectParseErrorAt(const std::string &spec, const std::string &needle,
                   const std::string &line_tag)
{
    try {
        parseNetworkSpec(spec);
        FAIL() << "expected FatalError containing '" << needle << "'";
    } catch (const util::FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(needle), std::string::npos) << what;
        EXPECT_NE(what.find(line_tag), std::string::npos) << what;
    }
}

} // namespace

TEST(SpecParser, ParsesDagEdges)
{
    const auto net = parseNetworkSpec(kDiamondSpec);
    EXPECT_FALSE(net.isChain());
    ASSERT_EQ(net.size(), 5u);
    EXPECT_EQ(net.preds(2), (std::vector<std::size_t>{0}));  // b <- stem
    EXPECT_EQ(net.preds(3), (std::vector<std::size_t>{1, 2})); // join
    EXPECT_EQ(net.preds(4), (std::vector<std::size_t>{3}));  // chain edge
    EXPECT_EQ(net.numEdges(), 5u);
}

TEST(SpecParser, DagRoundTripsExactly)
{
    // parse -> toSpec -> parse must preserve layers *and* wiring.
    const auto original = parseNetworkSpec(kDiamondSpec);
    const auto reparsed = parseNetworkSpec(dnn::toSpec(original));
    ASSERT_EQ(reparsed.size(), original.size());
    EXPECT_FALSE(reparsed.isChain());
    for (std::size_t l = 0; l < original.size(); ++l) {
        EXPECT_EQ(original.layer(l).name, reparsed.layer(l).name);
        EXPECT_EQ(original.layer(l).outPooled, reparsed.layer(l).outPooled);
        EXPECT_EQ(original.preds(l), reparsed.preds(l)) << "layer " << l;
    }
}

TEST(SpecParser, DagZooFixturesRoundTripExactly)
{
    for (const char *name : {"ResNet-block", "Inception-branch"}) {
        const auto original = dnn::modelByName(name);
        const auto reparsed = parseNetworkSpec(dnn::toSpec(original));
        ASSERT_EQ(reparsed.size(), original.size()) << name;
        for (std::size_t l = 0; l < original.size(); ++l) {
            EXPECT_EQ(original.layer(l).name, reparsed.layer(l).name);
            EXPECT_EQ(original.preds(l), reparsed.preds(l))
                << name << " layer " << l;
        }
    }
}

TEST(SpecParser, RejectsBadEdges)
{
    const std::string head =
        "network x\n"  // line 1
        "input 1 8 8\n" // line 2
        "fc a 8\n"      // line 3
        "fc b 8\n";     // line 4

    // Back edge (would close a cycle): b is declared after a.
    expectParseErrorAt(head + "edge b a\n",
                       "a back edge would close a cycle", "line 5");
    // Self edge.
    expectParseErrorAt(head + "edge a a\n", "self-edge", "line 5");
    // Dangling edge: unknown layer name.
    expectParseErrorAt(head + "edge a ghost\n",
                       "edge references unknown layer 'ghost'", "line 5");
    // Duplicate edge.
    expectParseErrorAt(head + "fc c 8\nedge a c\nedge b c\nedge a c\n",
                       "duplicate edge", "line 8");
    // Arity.
    expectParseErrorAt(head + "edge a\n", "usage: edge", "line 5");
    // Duplicate layer name (the would-be edge target is ambiguous).
    expectParseErrorAt(head + "fc a 8\n", "duplicate layer name 'a'",
                       "line 5");
}

TEST(SpecParser, DagValidationCatchesShapeAndStructure)
{
    // Join with mismatched predecessor shapes (8 vs 6 wide).
    EXPECT_THROW(parseNetworkSpec("network x\n"
                                  "input 4 1 1\n"
                                  "fc a 8\n"
                                  "fc b 6\n"
                                  "edge a b\n"
                                  "fc j 10\n"
                                  "edge a j\n"
                                  "edge b j\n"),
                 util::FatalError);
    // Dangling branch: layer b feeds nothing and is not the sink.
    EXPECT_THROW(parseNetworkSpec("network x\n"
                                  "input 4 1 1\n"
                                  "fc a 8\n"
                                  "fc b 8\n"
                                  "fc c 10\n"
                                  "edge a c\n"),
                 util::FatalError);
}
