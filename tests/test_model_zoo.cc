/**
 * @file
 * Tests for the ten-network model zoo: layer counts, shapes, and the
 * paper's structural claims ("the number of weighted layers of these
 * models ranges from four to nineteen", Table 3 hyper-parameters).
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "util/logging.hh"

using namespace hypar;

TEST(ModelZoo, TenModelsInPaperOrder)
{
    const auto models = dnn::allModels();
    const auto names = dnn::allModelNames();
    ASSERT_EQ(models.size(), 10u);
    ASSERT_EQ(names.size(), 10u);
    for (std::size_t i = 0; i < models.size(); ++i)
        EXPECT_EQ(models[i].name(), names[i]);
}

TEST(ModelZoo, WeightedLayerCountsMatchPaper)
{
    // Section 1: "the number of weighted layers of these models range
    // from four to nineteen"; Fig. 5 gives per-network counts.
    EXPECT_EQ(dnn::makeSfc().size(), 4u);
    EXPECT_EQ(dnn::makeSconv().size(), 4u);
    EXPECT_EQ(dnn::makeLenetC().size(), 4u);
    EXPECT_EQ(dnn::makeCifarC().size(), 5u);
    EXPECT_EQ(dnn::makeAlexNet().size(), 8u);
    EXPECT_EQ(dnn::makeVggA().size(), 11u);
    EXPECT_EQ(dnn::makeVggB().size(), 13u);
    EXPECT_EQ(dnn::makeVggC().size(), 16u);
    EXPECT_EQ(dnn::makeVggD().size(), 16u);
    EXPECT_EQ(dnn::makeVggE().size(), 19u);
}

TEST(ModelZoo, SfcIsTable3)
{
    // Table 3: 784-8192-8192-8192-10, no convolutions.
    dnn::Network sfc = dnn::makeSfc();
    EXPECT_FALSE(sfc.hasConv());
    EXPECT_EQ(sfc.inputShape().elems(), 784u);
    EXPECT_EQ(sfc.layer(0).outChannels, 8192u);
    EXPECT_EQ(sfc.layer(3).outChannels, 10u);
}

TEST(ModelZoo, SconvIsTable3)
{
    // Table 3: 20@5x5, 50@5x5 (2x2 max pool), 50@5x5, 10@5x5 (2x2 max
    // pool); no fully-connected layer, final feature map 1x1x10.
    dnn::Network sconv = dnn::makeSconv();
    EXPECT_FALSE(sconv.hasFc());
    EXPECT_EQ(sconv.layer(0).outChannels, 20u);
    EXPECT_TRUE(sconv.layer(1).pool.enabled());
    EXPECT_FALSE(sconv.layer(2).pool.enabled());
    const auto &out = sconv.layer(3).outPooled;
    EXPECT_EQ(out.c, 10u);
    EXPECT_EQ(out.h, 1u);
    EXPECT_EQ(out.w, 1u);
}

TEST(ModelZoo, LenetShapes)
{
    dnn::Network lenet = dnn::makeLenetC();
    EXPECT_EQ(lenet.layer(1).outPooled.h, 4u); // 8x8 pooled to 4x4
    EXPECT_EQ(lenet.layer(2).fcInputs(), 800u);
    EXPECT_EQ(lenet.totalParamElems(), 430500u);
}

TEST(ModelZoo, AlexNetShapes)
{
    dnn::Network alex = dnn::makeAlexNet();
    EXPECT_EQ(alex.layer(0).outRaw.h, 55u);
    EXPECT_EQ(alex.layer(0).outPooled.h, 27u);
    EXPECT_EQ(alex.layer(4).outPooled.h, 6u);  // 13 -> pool3/2 -> 6
    EXPECT_EQ(alex.layer(5).fcInputs(), 9216u); // 6*6*256
    EXPECT_EQ(alex.totalParamElems(), 62367776u);
}

TEST(ModelZoo, VggFamilyStructure)
{
    // All VGGs end with the 4096-4096-1000 classifier on 7x7x512.
    for (const auto name : {"VGG-A", "VGG-B", "VGG-C", "VGG-D", "VGG-E"}) {
        dnn::Network vgg = dnn::modelByName(name);
        const std::size_t fc1 = vgg.layerIndex("fc1");
        EXPECT_EQ(vgg.layer(fc1).fcInputs(), 25088u) << name; // 7*7*512
        EXPECT_EQ(vgg.layer(vgg.size() - 1).outChannels, 1000u) << name;
        EXPECT_TRUE(vgg.hasConv());
    }
}

TEST(ModelZoo, VggCHasOneByOneConvs)
{
    dnn::Network vgg_c = dnn::makeVggC();
    EXPECT_EQ(vgg_c.layer(vgg_c.layerIndex("conv3_3")).kernel, 1u);
    EXPECT_EQ(vgg_c.layer(vgg_c.layerIndex("conv4_3")).kernel, 1u);
    EXPECT_EQ(vgg_c.layer(vgg_c.layerIndex("conv5_3")).kernel, 1u);
    // VGG-D's same-position convs are 3x3.
    dnn::Network vgg_d = dnn::makeVggD();
    EXPECT_EQ(vgg_d.layer(vgg_d.layerIndex("conv3_3")).kernel, 3u);
}

TEST(ModelZoo, LookupByName)
{
    for (const auto &name : dnn::allModelNames())
        EXPECT_EQ(dnn::modelByName(name).name(), name);
    EXPECT_THROW(dnn::modelByName("ResNet-50"), util::FatalError);
}

TEST(ModelZoo, MacCountsAreSane)
{
    // VGG-E forward pass is famously ~19.6 GMACs for one 224x224 image.
    const double vgg_e = dnn::makeVggE().totalFwdMacsPerSample();
    EXPECT_GT(vgg_e, 19.0e9);
    EXPECT_LT(vgg_e, 20.5e9);

    // AlexNet is ~0.7-1.2 GMACs (ungrouped single-tower variant).
    const double alex = dnn::makeAlexNet().totalFwdMacsPerSample();
    EXPECT_GT(alex, 0.6e9);
    EXPECT_LT(alex, 1.3e9);
}
