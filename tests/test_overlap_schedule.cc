/**
 * @file
 * Unit tests for the two-tape decomposition of the overlapped
 * gradient-communication schedule (TrainingSimulator::overlapSchedule
 * and the overlap branch of sweepNeighborhood): on hand-computable
 * 2-3 layer networks the serial/network chain split must reproduce the
 * event-driven simulator exactly — same task times, same step latency —
 * and the recordTrace interaction (the one remaining sweep fallback)
 * must stay consistent.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"
#include "noc/htree.hh"
#include "sim/training_sim.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::HierarchicalPlan;
using core::Parallelism;
using sim::SimOptions;
using sim::TapeSchedule;
using sim::TapeTask;
using sim::TrainingSimulator;

namespace {

struct Rig
{
    explicit Rig(const dnn::Network &n, std::size_t levels = 2,
                 SimOptions opts = {})
        : net(n), model(net, CommConfig{}),
          topo(levels, noc::TopologyConfig{}),
          simulator(model, arch::AcceleratorConfig{},
                    arch::EnergyModel{}, topo, opts)
    {}

    dnn::Network net;
    CommModel model;
    noc::HTreeTopology topo;
    TrainingSimulator simulator;
};

/** A tiny two-fc-layer network (both layers hand-traceable). */
dnn::Network
twoLayerNet()
{
    dnn::NetworkBuilder b("two", {16, 1, 1});
    b.fc("fc1", 64).fc("fc2", 32);
    return b.build();
}

/** Three layers so a dp-mp boundary exists mid-network. */
dnn::Network
threeLayerNet()
{
    dnn::NetworkBuilder b("three", {16, 1, 1});
    b.fc("fc1", 64).fc("fc2", 128).fc("fc3", 32);
    return b.build();
}

} // namespace

// The two-tape schedule must reproduce the event queue exactly: with
// recordTrace on, every resolved (start, end, label) of the schedule
// equals the trace the event-driven simulate() emits, and the tape
// ends bound the step.
TEST(OverlapSchedule, MatchesEventQueueTraceTaskByTask)
{
    for (const bool overlap : {false, true}) {
        SimOptions opts;
        opts.overlapGradComm = overlap;
        opts.recordTrace = true;
        Rig rig(threeLayerNet(), 2, opts);

        HierarchicalPlan plan;
        plan.levels = {{Parallelism::kData, Parallelism::kModel,
                        Parallelism::kData},
                       {Parallelism::kData, Parallelism::kData,
                        Parallelism::kModel}};

        const auto metrics = rig.simulator.simulate(plan);
        const auto &trace = rig.simulator.lastTrace();
        const TapeSchedule sched = rig.simulator.overlapSchedule(plan);

        ASSERT_EQ(sched.tasks.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i) {
            EXPECT_EQ(sched.tasks[i].start, trace[i].start)
                << "task " << i << " overlap " << overlap;
            EXPECT_EQ(sched.tasks[i].end, trace[i].end)
                << "task " << i << " overlap " << overlap;
            EXPECT_EQ(sched.tasks[i].label, trace[i].label)
                << "task " << i << " overlap " << overlap;
        }
        EXPECT_EQ(sched.stepSeconds, metrics.stepSeconds);
        EXPECT_EQ(sched.stepSeconds,
                  std::max(sched.serialEnd, sched.networkEnd));
    }
}

// Without overlap every task rides the serial tape and the step is the
// plain sum of all task durations.
TEST(OverlapSchedule, DegeneratesToSerialChainWithoutOverlap)
{
    Rig rig(twoLayerNet(), 2);
    const auto plan = core::makeDataParallelPlan(rig.net, 2);
    const TapeSchedule sched = rig.simulator.overlapSchedule(plan);

    ASSERT_FALSE(sched.tasks.empty());
    double sum = 0.0;
    for (const auto &t : sched.tasks) {
        EXPECT_EQ(t.tape, TapeTask::Tape::kSerial);
        EXPECT_FALSE(t.async);
        EXPECT_EQ(t.start, sum);
        sum += t.seconds;
        EXPECT_EQ(t.end, sum);
    }
    EXPECT_EQ(sched.stepSeconds, sched.serialEnd);
    EXPECT_EQ(sched.stepSeconds,
              rig.simulator.simulate(plan).stepSeconds);
}

// Hand-computable all-dp two-layer case at H = 1: the task list is
// fwd0 fwd1 bwd1 grad0 gradx0 grad1 gradx1 (dp-dp boundaries move no
// tensors), the gradient reductions ride the network tape, and the
// two-tape recurrence resolves by hand:
//
//   serial  = c_f0 + c_f1 + c_b1 + c_g0 + c_g1
//   n0      = (c_f0 + c_f1 + c_b1 + c_g0) + e0   (network was idle)
//   n1      = max(n0, serial) + e1
//   step    = max(serial, n1)
TEST(OverlapSchedule, HandComputedTwoLayerAllDp)
{
    SimOptions opts;
    opts.overlapGradComm = true;
    Rig rig(twoLayerNet(), 1, opts);
    const auto plan = core::makeDataParallelPlan(rig.net, 1);
    const TapeSchedule sched = rig.simulator.overlapSchedule(plan);

    ASSERT_EQ(sched.tasks.size(), 7u);
    const auto &t = sched.tasks;
    // Tape and phase assignment.
    for (const std::size_t i : {0u, 1u, 2u, 3u, 5u}) {
        EXPECT_EQ(t[i].tape, TapeTask::Tape::kSerial) << i;
        EXPECT_FALSE(t[i].exchange) << i;
    }
    for (const std::size_t i : {4u, 6u}) {
        EXPECT_EQ(t[i].tape, TapeTask::Tape::kNetwork) << i;
        EXPECT_TRUE(t[i].exchange) << i;
        EXPECT_TRUE(t[i].async) << i;
        EXPECT_EQ(t[i].phase, 2) << i;
    }

    // The recurrence, replayed by hand from the task durations.
    const double serial_at_g0 =
        t[0].seconds + t[1].seconds + t[2].seconds + t[3].seconds;
    const double serial = serial_at_g0 + t[5].seconds;
    const double n0 = serial_at_g0 + t[4].seconds;
    const double n1 = std::max(n0, serial) + t[6].seconds;

    EXPECT_EQ(t[4].start, serial_at_g0);
    EXPECT_EQ(t[4].end, n0);
    EXPECT_EQ(t[6].end, n1);
    EXPECT_EQ(sched.serialEnd, serial);
    EXPECT_EQ(sched.networkEnd, n1);
    EXPECT_EQ(sched.stepSeconds, std::max(serial, n1));
    EXPECT_EQ(sched.stepSeconds,
              rig.simulator.simulate(plan).stepSeconds);

    // Overlap hides all but the tail reduction: the step is strictly
    // shorter than the serialized schedule.
    double total = 0.0;
    for (const auto &task : sched.tasks)
        total += task.seconds;
    EXPECT_LT(sched.stepSeconds, total);
}

// With overlap on, the network tape carries exactly the gradient
// reductions; forward/backward exchanges stay synchronous and join the
// tapes (a later async task can never start before them).
TEST(OverlapSchedule, NetworkTapeCarriesExactlyTheGradientReductions)
{
    SimOptions opts;
    opts.overlapGradComm = true;
    Rig rig(dnn::makeLenetC(), 4, opts);
    const auto plan = core::makeHyparPlan(rig.model, 4);
    const TapeSchedule sched = rig.simulator.overlapSchedule(plan);

    double last_sync_end = 0.0;
    std::size_t async_count = 0;
    std::size_t sync_exchanges = 0;
    for (const auto &t : sched.tasks) {
        if (t.tape == TapeTask::Tape::kNetwork) {
            ++async_count;
            EXPECT_TRUE(t.exchange);
            EXPECT_EQ(t.phase, 2); // gradient reductions only
            EXPECT_GE(t.start, last_sync_end);
        } else if (t.exchange) {
            ++sync_exchanges;
            EXPECT_FALSE(t.async);
            last_sync_end = t.end;
        }
    }
    EXPECT_GT(async_count, 0u);
    EXPECT_GT(sync_exchanges, 0u);
    EXPECT_EQ(sched.stepSeconds,
              rig.simulator.simulate(plan).stepSeconds);
}

// Tracing sweeps replay the variant tables too (the fallback to
// per-mask simulate() is gone): for every mask, the metrics AND the
// full per-task trace — start, end, label — must equal a direct
// simulate() of the substituted plan, in both overlap modes.
TEST(OverlapSchedule, SweepRecordTraceMatchesPerMaskSimulate)
{
    for (const bool overlap : {false, true}) {
        SimOptions opts;
        opts.overlapGradComm = overlap;
        opts.recordTrace = true;
        Rig rig(threeLayerNet(), 2, opts);
        Rig oracle(threeLayerNet(), 2, opts);
        const auto base = core::makeDataParallelPlan(rig.net, 2);

        for (std::size_t level = 0; level < 2; ++level) {
            std::uint64_t visited = 0;
            rig.simulator.sweepNeighborhood(
                base, level,
                [&](std::uint64_t mask, const sim::StepMetrics &m) {
                    EXPECT_EQ(mask, visited++);
                    HierarchicalPlan plan = base;
                    plan.levels[level] =
                        core::levelPlanFromMask(mask, rig.net.size());
                    const auto ref = oracle.simulator.simulate(plan);
                    EXPECT_EQ(m.stepSeconds, ref.stepSeconds);
                    EXPECT_EQ(m.commBytes, ref.commBytes);

                    const auto &got = rig.simulator.lastTrace();
                    const auto &want = oracle.simulator.lastTrace();
                    ASSERT_EQ(got.size(), want.size())
                        << "overlap " << overlap << " level " << level
                        << " mask " << mask;
                    for (std::size_t i = 0; i < want.size(); ++i) {
                        EXPECT_EQ(got[i].start, want[i].start) << i;
                        EXPECT_EQ(got[i].end, want[i].end) << i;
                        EXPECT_EQ(got[i].label, want[i].label) << i;
                    }
                });
            EXPECT_EQ(visited, std::uint64_t{1} << rig.net.size());
        }
    }
}

// After a tracing sweep, lastTrace() holds the final mask's trace —
// identical to tracing the substituted plan directly.
TEST(OverlapSchedule, SweepRecordTraceKeepsLastMaskTrace)
{
    SimOptions opts;
    opts.overlapGradComm = true;
    opts.recordTrace = true;
    Rig rig(twoLayerNet(), 2, opts);
    const auto base = core::makeDataParallelPlan(rig.net, 2);

    std::size_t visited = 0;
    rig.simulator.sweepNeighborhood(
        base, 1, [&](std::uint64_t, const sim::StepMetrics &) {
            ++visited;
        });
    ASSERT_EQ(visited, std::size_t{1} << rig.net.size());
    const auto swept_trace = rig.simulator.lastTrace();

    HierarchicalPlan last = base;
    last.levels[1] = core::levelPlanFromMask(
        (std::uint64_t{1} << rig.net.size()) - 1, rig.net.size());
    (void)rig.simulator.simulate(last);
    const auto &direct = rig.simulator.lastTrace();

    ASSERT_EQ(swept_trace.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(swept_trace[i].start, direct[i].start) << i;
        EXPECT_EQ(swept_trace[i].end, direct[i].end) << i;
        EXPECT_EQ(swept_trace[i].label, direct[i].label) << i;
    }
}
