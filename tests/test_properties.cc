/**
 * @file
 * Parameterized property suites (TEST_P) sweeping the model zoo,
 * hierarchy depths, batch sizes and scaling policies: the invariants of
 * DESIGN.md Section 7 checked across the whole configuration space.
 */

#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "core/brute_force.hh"
#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"
#include "sim/evaluator.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::HierarchicalPartitioner;
using core::Parallelism;

// ---------------------------------------------------------------------
// Property: HyPar never loses to the uniform baselines, for any model,
// depth and batch size.
// ---------------------------------------------------------------------

using NetDepthBatch = std::tuple<std::string, std::size_t, std::size_t>;

class HyparDominance : public ::testing::TestWithParam<NetDepthBatch>
{};

TEST_P(HyparDominance, CommAtMostUniformBaselines)
{
    const auto &[name, levels, batch] = GetParam();
    dnn::Network net = dnn::modelByName(name);
    CommConfig cfg;
    cfg.batch = batch;
    CommModel model(net, cfg);

    const auto hypar = HierarchicalPartitioner(model).partition(levels);
    EXPECT_LE(hypar.commBytes,
              model.planBytes(core::makeDataParallelPlan(net, levels)));
    EXPECT_LE(hypar.commBytes,
              model.planBytes(core::makeModelParallelPlan(net, levels)));
    EXPECT_LE(hypar.commBytes,
              model.planBytes(core::makeOneWeirdTrickPlan(net, levels)));
}

TEST_P(HyparDominance, PlanShapeIsConsistent)
{
    const auto &[name, levels, batch] = GetParam();
    dnn::Network net = dnn::modelByName(name);
    CommConfig cfg;
    cfg.batch = batch;
    CommModel model(net, cfg);

    const auto result = HierarchicalPartitioner(model).partition(levels);
    EXPECT_EQ(result.plan.numLevels(), levels);
    EXPECT_EQ(result.plan.numLayers(), net.size());
    EXPECT_NO_THROW(core::validatePlan(result.plan, net));
    EXPECT_GE(result.commBytes, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ZooSweep, HyparDominance,
    ::testing::Combine(
        ::testing::Values("SFC", "SCONV", "Lenet-c", "Cifar-c", "AlexNet",
                          "VGG-A", "VGG-E"),
        ::testing::Values(1u, 2u, 3u, 4u, 6u),
        ::testing::Values(32u, 256u, 4096u)),
    [](const auto &info) {
        auto name = std::get<0>(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name + "_H" + std::to_string(std::get<1>(info.param)) +
               "_B" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Property: Algorithm 1 is exactly optimal on random networks across
// batch sizes (checked against exhaustive enumeration).
// ---------------------------------------------------------------------

class PairwiseOptimality
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::size_t>>
{};

TEST_P(PairwiseOptimality, MatchesBruteForce)
{
    const auto &[seed, batch] = GetParam();
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> width(4, 512);
    std::uniform_int_distribution<int> coin(0, 1);

    // Mixed conv/fc random network: conv prefix, fc suffix.
    dnn::NetworkBuilder b("rand", {3, 32, 32});
    const int convs = 1 + coin(rng) + coin(rng);
    for (int i = 0; i < convs; ++i)
        b.conv("c" + std::to_string(i), 8 + 8 * static_cast<std::size_t>(
                                                 coin(rng)), 3).pad(1);
    const int fcs = 1 + coin(rng) + coin(rng);
    for (int i = 0; i < fcs; ++i)
        b.fc("f" + std::to_string(i), width(rng));
    dnn::Network net = b.build();

    CommConfig cfg;
    cfg.batch = batch;
    CommModel model(net, cfg);
    core::History hist(net.size());
    const auto dp = core::PairwisePartitioner(model).partition(hist);
    const auto bf = core::bruteForcePairwise(model, hist);
    EXPECT_DOUBLE_EQ(dp.commBytes, bf.commBytes);
}

INSTANTIATE_TEST_SUITE_P(
    RandomNets, PairwiseOptimality,
    ::testing::Combine(::testing::Range(std::uint32_t{1},
                                        std::uint32_t{16}),
                       ::testing::Values(16u, 256u)));

// ---------------------------------------------------------------------
// Property: communication is monotone in batch size for feature-bound
// plans and invariant for gradient-bound plans.
// ---------------------------------------------------------------------

class BatchMonotonicity : public ::testing::TestWithParam<std::string>
{};

TEST_P(BatchMonotonicity, DpCommBatchInvariantMpCommGrows)
{
    dnn::Network net = dnn::modelByName(GetParam());
    CommConfig small;
    small.batch = 32;
    CommConfig big;
    big.batch = 512;
    CommModel m_small(net, small);
    CommModel m_big(net, big);

    const auto dp = core::makeDataParallelPlan(net, 4);
    const auto mp = core::makeModelParallelPlan(net, 4);

    // dp exchanges gradients only: batch independent.
    EXPECT_DOUBLE_EQ(m_small.planBytes(dp), m_big.planBytes(dp));
    // mp exchanges activations/errors: strictly growing with batch.
    EXPECT_LT(m_small.planBytes(mp), m_big.planBytes(mp));
}

INSTANTIATE_TEST_SUITE_P(Zoo, BatchMonotonicity,
                         ::testing::Values("SFC", "Lenet-c", "AlexNet",
                                           "VGG-A"),
                         [](const auto &info) {
                             auto name = info.param;
                             for (auto &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

// ---------------------------------------------------------------------
// Property: simulated communication equals the analytic model for every
// strategy / depth combination (simulator conservation law).
// ---------------------------------------------------------------------

using StrategyDepth = std::tuple<std::string, std::size_t>;

class SimulatorConservation
    : public ::testing::TestWithParam<StrategyDepth>
{};

TEST_P(SimulatorConservation, CommBytesMatchAnalytic)
{
    const auto &[name, levels] = GetParam();
    dnn::Network net = dnn::modelByName(name);
    sim::SimConfig cfg;
    cfg.levels = levels;
    sim::Evaluator ev(net, cfg);

    for (auto strategy :
         {core::Strategy::kDataParallel, core::Strategy::kModelParallel,
          core::Strategy::kHypar}) {
        const auto plan = ev.plan(strategy);
        const auto metrics = ev.evaluate(plan);
        EXPECT_NEAR(metrics.commBytes, ev.commBytes(plan),
                    1e-6 * std::max(1.0, metrics.commBytes))
            << core::toString(strategy);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ZooDepths, SimulatorConservation,
    ::testing::Combine(::testing::Values("SFC", "Lenet-c", "AlexNet",
                                         "VGG-A"),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto &info) {
        auto name = std::get<0>(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name + "_H" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Property: the all-dp closed form holds for every depth.
// ---------------------------------------------------------------------

class DpClosedForm : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(DpClosedForm, TotalIsTwoPowHMinusOneTimesGradients)
{
    const std::size_t levels = GetParam();
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        const double expect =
            (std::pow(2.0, static_cast<double>(levels)) - 1.0) * 2.0 *
            4.0 * static_cast<double>(net.totalParamElems());
        EXPECT_DOUBLE_EQ(
            model.planBytes(core::makeDataParallelPlan(net, levels)),
            expect)
            << net.name();
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, DpClosedForm,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u));
