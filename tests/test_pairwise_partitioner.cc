/**
 * @file
 * Tests for Algorithm 1, most importantly *exact optimality*: the
 * dynamic program must match exhaustive enumeration over all 2^L
 * assignments for every zoo network that is small enough to enumerate,
 * and for randomized synthetic networks.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/brute_force.hh"
#include "core/comm_model.hh"
#include "core/pairwise_partitioner.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"
#include "util/logging.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::History;
using core::PairwisePartitioner;
using core::Parallelism;

namespace {

/** Random fc/conv-free synthetic network with `layers` fc layers. */
dnn::Network
randomFcNet(std::size_t layers, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> width(8, 2048);
    dnn::NetworkBuilder b("rand", {width(rng), 1, 1});
    for (std::size_t l = 0; l < layers; ++l)
        b.fc("fc" + std::to_string(l), width(rng));
    return b.build();
}

} // namespace

TEST(PairwisePartitioner, MatchesBruteForceOnZooNets)
{
    for (const auto &net : dnn::allModels()) {
        if (net.size() > 16)
            continue; // keep enumeration fast
        CommModel model(net, CommConfig{});
        History hist(net.size());
        const auto dp = PairwisePartitioner(model).partition(hist);
        const auto bf = core::bruteForcePairwise(model, hist);
        EXPECT_DOUBLE_EQ(dp.commBytes, bf.commBytes) << net.name();
        EXPECT_DOUBLE_EQ(model.pairBytes(dp.plan, hist), dp.commBytes)
            << net.name();
    }
}

TEST(PairwisePartitioner, MatchesBruteForceOnRandomNets)
{
    for (std::uint32_t seed = 1; seed <= 20; ++seed) {
        dnn::Network net = randomFcNet(8, seed);
        CommConfig cfg;
        cfg.batch = 64;
        CommModel model(net, cfg);
        History hist(net.size());
        const auto dp = PairwisePartitioner(model).partition(hist);
        const auto bf = core::bruteForcePairwise(model, hist);
        EXPECT_DOUBLE_EQ(dp.commBytes, bf.commBytes) << "seed " << seed;
    }
}

TEST(PairwisePartitioner, MatchesBruteForceUnderHistories)
{
    // Optimality must hold at lower levels too (scaled amounts).
    dnn::Network net = dnn::makeLenetC();
    CommModel model(net, CommConfig{});

    const std::vector<core::LevelPlan> uppers = {
        core::uniformLevelPlan(net.size(), Parallelism::kData),
        core::uniformLevelPlan(net.size(), Parallelism::kModel),
        core::levelPlanFromMask(0b0011, net.size()),
        core::levelPlanFromMask(0b0101, net.size()),
    };
    for (const auto &upper : uppers) {
        History hist(net.size());
        hist.push(upper);
        hist.push(upper);
        const auto dp = PairwisePartitioner(model).partition(hist);
        const auto bf = core::bruteForcePairwise(model, hist);
        EXPECT_DOUBLE_EQ(dp.commBytes, bf.commBytes)
            << core::toBitString(upper);
    }
}

TEST(PairwisePartitioner, SingleLayerPicksCheaperIntra)
{
    // Section 3.4 fc example: mp (25.6 KB) beats dp (56 KB).
    dnn::Network fc = dnn::NetworkBuilder("fc", {70, 1, 1})
                          .fc("fc", 100)
                          .build();
    CommConfig cfg;
    cfg.batch = 32;
    CommModel fc_model(fc, cfg);
    const auto fc_result = PairwisePartitioner(fc_model).partition();
    EXPECT_EQ(fc_result.plan[0], Parallelism::kModel);
    EXPECT_DOUBLE_EQ(fc_result.commBytes, 25600.0);

    // Section 3.4 conv example: dp (200 KB) beats mp (819.2 KB).
    dnn::Network conv = dnn::NetworkBuilder("conv", {20, 12, 12})
                            .conv("conv", 50, 5)
                            .build();
    CommModel conv_model(conv, cfg);
    const auto conv_result = PairwisePartitioner(conv_model).partition();
    EXPECT_EQ(conv_result.plan[0], Parallelism::kData);
    EXPECT_DOUBLE_EQ(conv_result.commBytes, 200000.0);
}

TEST(PairwisePartitioner, TieBreaksTowardDataParallelism)
{
    // A layer whose dp and mp intra costs are identical: A(dW) = N*N,
    // A(F) = B*N with B = N. dp must win the tie (dp-dp is free).
    dnn::Network net = dnn::NetworkBuilder("tie", {64, 1, 1})
                           .fc("fc", 64)
                           .build();
    CommConfig cfg;
    cfg.batch = 64;
    CommModel model(net, cfg);
    const auto result = PairwisePartitioner(model).partition();
    EXPECT_EQ(result.plan[0], Parallelism::kData);
}

TEST(PairwisePartitioner, CostIsConsistentWithPlanReplay)
{
    // The DP's reported optimum must equal re-evaluating its plan.
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        History hist(net.size());
        const auto result = PairwisePartitioner(model).partition(hist);
        EXPECT_DOUBLE_EQ(result.commBytes,
                         model.pairBytes(result.plan, hist))
            << net.name();
    }
}

TEST(PairwisePartitioner, RejectsMismatchedHistory)
{
    dnn::Network net = dnn::makeLenetC();
    CommModel model(net, CommConfig{});
    History wrong(net.size() + 1);
    EXPECT_THROW((void)PairwisePartitioner(model).partition(wrong),
                 util::FatalError);
}
