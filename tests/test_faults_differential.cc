/**
 * @file
 * Differential suite for the fault model. Two invariants anchor it:
 *
 *  1. *Pristine bit-identity*: an empty fault map — or an explicit
 *     all-1.0 one — must leave every layer of the stack bit-identical
 *     to a build without the fault field: CommModel totals, every
 *     search engine's plan and cost, topology exchange times, and
 *     simulated step metrics. EXPECT_EQ on doubles, no tolerance.
 *
 *  2. *Degraded exactness*: with non-trivial level penalties the four
 *     joint-DP engines must still agree with each other and with the
 *     Gray-code enumeration oracle — the penalty is a uniform per-level
 *     weight, so every exactness/dominance/admissibility argument
 *     carries over, and this suite is the empirical check.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <random>
#include <sstream>

#include "arch/fault_map.hh"
#include "core/brute_force.hh"
#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/optimal_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"
#include "sim/evaluator.hh"
#include "sim/robust.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

using namespace hypar;
using arch::FaultMap;
using core::CommConfig;
using core::CommModel;

namespace {

/** Random conv/fc chain with 2..10 weighted layers (the idiom shared
 *  with test_equivalence_random.cc). */
dnn::Network
randomNetwork(std::mt19937 &rng)
{
    std::uniform_int_distribution<int> convs(0, 2);
    std::uniform_int_distribution<int> fcs(2, 8);
    std::uniform_int_distribution<std::size_t> channels(1, 64);
    std::uniform_int_distribution<std::size_t> widths(1, 512);

    const int num_convs = convs(rng);
    dnn::NetworkBuilder b("rand",
                          num_convs > 0
                              ? dnn::SampleShape{3, 16, 16}
                              : dnn::SampleShape{widths(rng), 1, 1});
    for (int c = 0; c < num_convs; ++c)
        b.conv("conv" + std::to_string(c), channels(rng), 3);
    const int num_fcs = fcs(rng);
    for (int f = 0; f < num_fcs; ++f)
        b.fc("fc" + std::to_string(f), widths(rng));
    return b.build();
}

CommConfig
randomConfig(std::mt19937 &rng)
{
    std::uniform_int_distribution<std::size_t> batch(1, 512);
    std::uniform_int_distribution<int> word(0, 2);
    std::bernoulli_distribution coin(0.5);

    CommConfig cfg;
    cfg.batch = batch(rng);
    cfg.wordBytes = std::array<double, 3>{1.0, 2.0, 4.0}[word(rng)];
    cfg.exchangeFactor = coin(rng) ? 2.0 : 1.0;
    cfg.scaling = coin(rng) ? CommConfig::Scaling::kPartitioned
                            : CommConfig::Scaling::kNone;
    return cfg;
}

/** Random per-level penalties in [1, 4) — positive, finite, non-1. */
std::vector<double>
randomPenalties(std::size_t levels, std::mt19937 &rng)
{
    std::uniform_real_distribution<double> p(1.0, 4.0);
    std::vector<double> out(levels);
    for (auto &v : out)
        v = p(rng);
    return out;
}

} // namespace

TEST(FaultsDifferential, LevelWeightsArePristineExact)
{
    const dnn::Network net = dnn::makeLenetC();

    // No penalties, all-1.0 penalties, and the historical pairs *= 2.0
    // accumulation all produce the exact same weights.
    const CommModel plain(net, CommConfig{});
    CommConfig ones_cfg;
    ones_cfg.levelPenalties.assign(8, 1.0);
    const CommModel ones(net, ones_cfg);
    double pairs = 1.0;
    for (std::size_t h = 0; h < 8; ++h) {
        EXPECT_EQ(plain.levelWeight(h), pairs);
        EXPECT_EQ(plain.levelWeight(h), std::ldexp(1.0, (int)h));
        EXPECT_EQ(ones.levelWeight(h), pairs);
        EXPECT_EQ(plain.levelPenalty(h), 1.0);
        pairs *= 2.0;
    }

    // And the weighted consumers agree bit for bit.
    const auto plan = core::makeHyparPlan(plain, 4);
    EXPECT_EQ(plain.planBytes(plan), ones.planBytes(plan));

    // Invalid penalties are rejected up front.
    CommConfig bad;
    bad.levelPenalties = {1.0, 0.0};
    EXPECT_THROW(CommModel(net, bad), util::FatalError);
    bad.levelPenalties = {std::nan("")};
    EXPECT_THROW(CommModel(net, bad), util::FatalError);
}

TEST(FaultsDifferential, AllOnesFaultMapIsBitIdenticalEndToEnd)
{
    // An explicit "everything healthy" map must change nothing, for
    // every topology: same plans, same costs, same step metrics.
    const dnn::Network net = dnn::makeLenetC();
    FaultMap ones;
    ones.nodes = {{0, 1.0}, {5, 1.0}};
    for (const auto kind :
         {sim::TopologyKind::kHTree, sim::TopologyKind::kTorus,
          sim::TopologyKind::kMesh}) {
        sim::SimConfig pristine;
        pristine.topology = kind;
        sim::SimConfig mapped = pristine;
        mapped.faults = ones;
        // All links listed healthy too — except on the mesh, which
        // has no link-level fault model and rejects link entries
        // outright (MeshRejectsLinkFaultEntries below).
        const auto topo =
            sim::makeTopology(kind, pristine.levels, pristine.noc);
        if (topo->supportsLinkFaults())
            for (std::size_t l = 0; l < topo->numLinks(); ++l)
                mapped.faults.links.push_back({l, 1.0});

        const sim::Evaluator a(net, pristine);
        const sim::Evaluator b(net, mapped);
        const auto plan_a = a.plan(core::Strategy::kHypar);
        const auto plan_b = b.plan(core::Strategy::kHypar);
        EXPECT_EQ(plan_a, plan_b);
        EXPECT_EQ(a.commBytes(plan_a), b.commBytes(plan_a));
        const auto ma = a.evaluate(plan_a);
        const auto mb = b.evaluate(plan_a);
        EXPECT_EQ(ma.stepSeconds, mb.stepSeconds);
        EXPECT_EQ(ma.energy.totalJ(), mb.energy.totalJ());
        for (std::size_t h = 0; h < pristine.levels; ++h) {
            EXPECT_EQ(a.topology().exchangeSeconds(h, 12345.0),
                      b.topology().exchangeSeconds(h, 12345.0))
                << "level " << h;
        }
    }
}

TEST(FaultsDifferential, EnginesStayExactOnDegradedCostTables)
{
    // Randomized equivalence on *degraded* models: all four engines
    // agree with each other bit for bit and with the Gray-code
    // hierarchical oracle, under random per-level penalties.
    std::mt19937 rng(2024);
    for (int trial = 0; trial < 25; ++trial) {
        const dnn::Network net = randomNetwork(rng);
        const std::size_t h = net.size() <= 8 ? 3 : 2;
        if (net.size() * h > 26)
            continue;
        CommConfig cfg = randomConfig(rng);
        cfg.levelPenalties = randomPenalties(h, rng);
        const CommModel model(net, cfg);
        const core::OptimalPartitioner partitioner(model);

        const auto brute = core::bruteForceHierarchical(model, h);
        const auto dense = partitioner.partition(h);
        EXPECT_DOUBLE_EQ(dense.commBytes, brute.commBytes)
            << "trial " << trial << " L=" << net.size() << " H=" << h;
        // planBytes weights each level's *sum* while the DP weights
        // per-layer terms; with non-power-of-two penalties those
        // roundings differ by ULPs, so the cross-check is relative.
        EXPECT_NEAR(model.planBytes(dense.plan), dense.commBytes,
                    1e-12 * dense.commBytes)
            << "trial " << trial;

        for (auto engine :
             {core::SearchEngine::kSparse, core::SearchEngine::kBeam,
              core::SearchEngine::kAStar}) {
            core::SearchOptions opts;
            opts.engine = engine;
            const auto result = partitioner.partition(h, opts);
            EXPECT_EQ(result.commBytes, dense.commBytes)
                << "trial " << trial << " engine "
                << static_cast<int>(engine);
            EXPECT_EQ(result.plan, dense.plan)
                << "trial " << trial << " engine "
                << static_cast<int>(engine);
        }

        // The Gray-code joint enumerator matches its naive recursion
        // on degraded tables too.
        if (net.size() * h <= 16) {
            const auto ref =
                core::bruteForceHierarchicalReference(model, h);
            EXPECT_EQ(brute.commBytes, ref.commBytes) << "trial " << trial;
            EXPECT_EQ(brute.plan, ref.plan) << "trial " << trial;
        }

        // Greedy Algorithm 2's reported total equals planBytes of its
        // own plan on the degraded model, up to the same ULP-level
        // reassociation.
        const auto greedy =
            core::HierarchicalPartitioner(model).partition(h);
        EXPECT_NEAR(greedy.commBytes, model.planBytes(greedy.plan),
                    1e-12 * greedy.commBytes)
            << "trial " << trial;
    }
}

TEST(FaultsDifferential, DegradedArraysAreNeverFasterAndReplanHelps)
{
    const dnn::Network net = dnn::makeLenetC();
    sim::SimConfig pristine;
    const sim::Evaluator base(net, pristine);
    const auto base_plan = base.plan(core::Strategy::kHypar);
    const double healthy = base.evaluate(base_plan).stepSeconds;
    const std::size_t nodes = base.topology().numNodes();
    const std::size_t links = base.topology().numLinks();

    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        sim::SimConfig degraded = pristine;
        degraded.faults =
            arch::sampleFaultMap(0.25, nodes, links, seed);
        const sim::Evaluator ev(net, degraded);

        // Slowest-member semantics: faults never speed a step up.
        const double stale = ev.evaluate(base_plan).stepSeconds;
        EXPECT_GE(stale, healthy) << "seed " << seed;

        // Re-planning on the degraded cost tables can only lower the
        // *communication* total below the stale plan's (the engine is
        // exact over the same degraded objective).
        const auto replanned =
            core::OptimalPartitioner(ev.model()).partition(
                degraded.levels);
        EXPECT_LE(replanned.commBytes, ev.commBytes(base_plan))
            << "seed " << seed;
    }
}

TEST(FaultsDifferential, DeadLinkOnLoadedRouteIsRejected)
{
    const dnn::Network net = dnn::makeLenetC();

    // H-tree: killing the root trunk makes level 0 unusable.
    sim::SimConfig htree;
    htree.faults.links = {{0, 0.0}};
    EXPECT_THROW(sim::Evaluator(net, htree), util::FatalError);

    // Torus: every horizontal central-cut link carries level-0 flows;
    // kill them all and the level has no surviving route.
    sim::SimConfig torus;
    torus.topology = sim::TopologyKind::kTorus;
    const auto topo = sim::makeTopology(sim::TopologyKind::kTorus,
                                        torus.levels, torus.noc);
    for (std::size_t id = 0; id < topo->numLinks(); ++id)
        torus.faults.links.push_back({id, 0.0});
    EXPECT_THROW(sim::Evaluator(net, torus), util::FatalError);

    // A throttled (but alive) trunk is fine and slows level 0 down.
    sim::SimConfig slow;
    slow.faults.links = {{0, 0.5}};
    const sim::Evaluator ev(net, slow);
    EXPECT_DOUBLE_EQ(ev.topology().levelPenalty(0), 2.0);
    EXPECT_DOUBLE_EQ(ev.topology().levelPenalty(1), 1.0);
}

TEST(FaultsDifferential, MeshRejectsLinkFaultEntries)
{
    // The mesh inherits the torus link id space, where the wrap links
    // exist but carry no traffic — a per-link map against it is
    // partially meaningless, so link entries are rejected up front
    // with the source line when the map came from a file.
    const dnn::Network net = dnn::makeLenetC();
    std::istringstream text("# degraded array\n"
                            "node 3 0.5\n"
                            "link 7 0.0\n");
    sim::SimConfig mesh;
    mesh.topology = sim::TopologyKind::kMesh;
    mesh.faults = arch::parseFaultMap(text);
    try {
        sim::Evaluator ev(net, mesh);
        FAIL() << "mesh link fault entry should be fatal";
    } catch (const util::FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("fault map line 3"), std::string::npos)
            << what;
        EXPECT_NE(what.find("Mesh"), std::string::npos) << what;
    }

    // Programmatic maps (no source line) are rejected too, with the
    // plain prefix.
    sim::SimConfig prog = mesh;
    prog.faults = arch::FaultMap{};
    prog.faults.links = {{0, 0.5}};
    EXPECT_THROW(sim::Evaluator(net, prog), util::FatalError);

    // Node-only maps stay valid on the mesh, and the samplers draw
    // node faults only for it — end to end, robust planning on a mesh
    // cannot trip the rejection.
    sim::SimConfig nodes_only = mesh;
    nodes_only.faults = arch::FaultMap{};
    nodes_only.faults.nodes = {{1, 0.0}};
    const sim::Evaluator ok(net, nodes_only);
    EXPECT_GT(ok.evaluate(ok.plan(core::Strategy::kHypar)).stepSeconds,
              0.0);

    sim::SimConfig clean_mesh;
    clean_mesh.topology = sim::TopologyKind::kMesh;
    sim::RobustOptions ropts;
    ropts.rate = 0.5;
    ropts.samples = 3;
    const auto robust = sim::robustPlan(net, clean_mesh, ropts);
    for (const auto &m : robust.sampleMaps)
        EXPECT_TRUE(m.links.empty());
}

TEST(FaultsDifferential, EvaluatorBatchCarriesTheComputeDerating)
{
    // evaluateBatch's cloned simulators must price compute with the
    // same fault derating as evaluate() (a dropped computeScale here
    // would silently split the two paths).
    const dnn::Network net = dnn::makeLenetC();
    sim::SimConfig cfg;
    cfg.faults.nodes = {{3, 0.5}};
    const sim::Evaluator ev(net, cfg);
    const auto plan = ev.plan(core::Strategy::kHypar);
    const std::vector<core::HierarchicalPlan> plans = {plan, plan};
    const auto batch = ev.evaluateBatch(
        std::span<const core::HierarchicalPlan>(plans));
    const auto single = ev.evaluate(plan);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].stepSeconds, single.stepSeconds);
    EXPECT_EQ(batch[1].stepSeconds, single.stepSeconds);
}

TEST(FaultsDifferential, RobustPlanIsThreadCountInvariant)
{
    const dnn::Network net = dnn::makeLenetC();
    sim::SimConfig cfg;
    sim::RobustOptions opts;
    opts.rate = 0.2;
    opts.samples = 5;
    opts.seed = 11;

    util::ThreadPool serial(1);
    util::ThreadPool wide(4);
    const auto a = sim::robustPlan(net, cfg, opts, serial);
    const auto b = sim::robustPlan(net, cfg, opts, wide);

    EXPECT_EQ(a.plan, b.plan);
    EXPECT_EQ(a.winner, b.winner);
    EXPECT_EQ(a.expectedStepSeconds, b.expectedStepSeconds);
    EXPECT_EQ(a.pristineExpectedStepSeconds,
              b.pristineExpectedStepSeconds);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (std::size_t c = 0; c < a.candidates.size(); ++c) {
        EXPECT_EQ(a.candidates[c].plan, b.candidates[c].plan);
        EXPECT_EQ(a.candidates[c].sampleStepSeconds,
                  b.candidates[c].sampleStepSeconds);
    }
    ASSERT_EQ(a.sampleMaps.size(), opts.samples);
    EXPECT_EQ(a.sampleMaps[0] == b.sampleMaps[0], true);

    // The winner can only improve on the pristine-optimal plan.
    EXPECT_LE(a.expectedStepSeconds, a.pristineExpectedStepSeconds);

    // Degenerate options are rejected.
    sim::RobustOptions zero;
    zero.samples = 0;
    EXPECT_THROW(sim::robustPlan(net, cfg, zero), util::FatalError);
}
