/**
 * @file
 * Tests for the interconnect models: H-tree fat-tree bandwidths, torus
 * placement, XY routing, congestion accounting, and the structural
 * claim behind Fig. 12 (tree-shaped exchanges run no faster on the
 * torus than on the H-tree).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "noc/htree.hh"
#include "noc/torus.hh"
#include "util/logging.hh"
#include "util/units.hh"

using namespace hypar;
using noc::HTreeTopology;
using noc::TopologyConfig;
using noc::TorusTopology;

namespace {

TopologyConfig
noLatency()
{
    TopologyConfig cfg;
    cfg.perHopLatency = 0.0;
    return cfg;
}

} // namespace

TEST(HTree, PaperBandwidthLadder)
{
    // H = 4: root trunk 12.8 Gb/s, halving per level down to the
    // paper's 1600 Mb/s leaf links.
    HTreeTopology tree(4, TopologyConfig{});
    EXPECT_DOUBLE_EQ(tree.pairBandwidth(0), util::gbitsPerSec(12.8));
    EXPECT_DOUBLE_EQ(tree.pairBandwidth(1), util::gbitsPerSec(6.4));
    EXPECT_DOUBLE_EQ(tree.pairBandwidth(2), util::gbitsPerSec(3.2));
    EXPECT_DOUBLE_EQ(tree.pairBandwidth(3), util::mbitsPerSec(1600.0));
}

TEST(HTree, ExchangeTimeIsBytesOverBandwidth)
{
    HTreeTopology tree(4, noLatency());
    const double bytes = 1.6e9; // one second at root bandwidth
    EXPECT_DOUBLE_EQ(tree.exchangeSeconds(0, bytes), 1.0);
    EXPECT_DOUBLE_EQ(tree.exchangeSeconds(3, bytes), 8.0);
    EXPECT_DOUBLE_EQ(tree.exchangeSeconds(1, 0.0), 0.0);
}

TEST(HTree, HopsShrinkTowardLeaves)
{
    HTreeTopology tree(4, TopologyConfig{});
    EXPECT_DOUBLE_EQ(tree.exchangeHops(0), 8.0); // up 4, down 4
    EXPECT_DOUBLE_EQ(tree.exchangeHops(3), 2.0); // adjacent leaves
}

TEST(HTree, LatencyAddsPerHop)
{
    TopologyConfig cfg;
    cfg.perHopLatency = 1e-6;
    HTreeTopology tree(2, cfg);
    const double no_payload_floor = tree.exchangeHops(0) * 1e-6;
    EXPECT_NEAR(tree.exchangeSeconds(0, 8.0),
                8.0 / cfg.rootBisection + no_payload_floor, 1e-18);
}

TEST(HTree, RejectsBadLevels)
{
    HTreeTopology tree(2, TopologyConfig{});
    EXPECT_THROW((void)tree.pairBandwidth(2), util::FatalError);
    EXPECT_THROW((void)tree.exchangeSeconds(2, 1.0), util::FatalError);
}

TEST(Torus, GridIsNearSquare)
{
    EXPECT_EQ(TorusTopology(4, TopologyConfig{}).gridWidth(), 4u);
    EXPECT_EQ(TorusTopology(4, TopologyConfig{}).gridHeight(), 4u);
    EXPECT_EQ(TorusTopology(3, TopologyConfig{}).gridWidth(), 4u);
    EXPECT_EQ(TorusTopology(3, TopologyConfig{}).gridHeight(), 2u);
    EXPECT_EQ(TorusTopology(1, TopologyConfig{}).gridWidth(), 2u);
    EXPECT_EQ(TorusTopology(1, TopologyConfig{}).gridHeight(), 1u);
}

TEST(Torus, HLayoutSplitsHalvesAlongX)
{
    // Fig. 4(d): the top-level halves (A0-7 vs A8-15) occupy disjoint
    // x ranges of the 4x4 grid.
    TorusTopology torus(4, TopologyConfig{});
    for (std::size_t node = 0; node < 8; ++node) {
        EXPECT_LT(torus.coord(node).first, 2u) << node;
        EXPECT_GE(torus.coord(node ^ 8).first, 2u) << node;
    }
    // All sixteen coordinates are distinct.
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (std::size_t node = 0; node < 16; ++node)
        seen.insert(torus.coord(node));
    EXPECT_EQ(seen.size(), 16u);
}

TEST(Torus, LeafExchangeBetweenNeighbors)
{
    // Level H-1 partners are grid neighbors: one hop each way; the
    // half-duplex link carries the full pair payload.
    TorusTopology torus(4, noLatency());
    const double bytes = 200e6; // one second on a 1600 Mb/s link
    EXPECT_NEAR(torus.exchangeSeconds(3, bytes), 1.0, 1e-12);
}

TEST(Torus, TopLevelIsCongested)
{
    // The level-0 exchange concentrates eight flows onto the column
    // cut; with only four rows (x2 wrap), it cannot beat the H-tree's
    // dedicated 12.8 Gb/s trunk.
    TorusTopology torus(4, noLatency());
    HTreeTopology tree(4, noLatency());
    const double bytes = 1e9;
    EXPECT_GE(torus.exchangeSeconds(0, bytes),
              tree.exchangeSeconds(0, bytes));
}

TEST(Torus, TreeNeverSlowerAcrossAllLevels)
{
    // Structural basis of Fig. 12: for each level the H-tree matches or
    // beats the torus on the hierarchical exchange pattern.
    TorusTopology torus(4, noLatency());
    HTreeTopology tree(4, noLatency());
    for (std::size_t h = 0; h < 4; ++h) {
        EXPECT_GE(torus.exchangeSeconds(h, 1e9),
                  tree.exchangeSeconds(h, 1e9))
            << "level " << h;
    }
}

TEST(Torus, HopCountsAreAtLeastOne)
{
    TorusTopology torus(4, TopologyConfig{});
    for (std::size_t h = 0; h < 4; ++h)
        EXPECT_GE(torus.exchangeHops(h), 1.0);
    // Longer paths at the top than at the leaves.
    EXPECT_GT(torus.exchangeHops(0), torus.exchangeHops(3));
}

TEST(Torus, SingleLevelDegeneratesToOneLink)
{
    // H = 1: two nodes; the no-wrap tie-break puts both directions on
    // the same physical link, so the torus equals an H-tree with a
    // matching trunk bandwidth.
    TopologyConfig cfg = noLatency();
    cfg.rootBisection = cfg.linkBandwidth;
    TorusTopology torus(1, cfg);
    HTreeTopology tree(1, cfg);
    EXPECT_NEAR(torus.exchangeSeconds(0, 1e8),
                tree.exchangeSeconds(0, 1e8), 1e-12);
}

TEST(Torus, UpperLevelsPayDoubleVsTree)
{
    // With ties avoiding the wrap link, the level-0 and level-1
    // exchanges concentrate on the central column/row cut: half the
    // ring capacity, hence exactly twice the H-tree's fat trunk time.
    TorusTopology torus(4, noLatency());
    HTreeTopology tree(4, noLatency());
    const double bytes = 1e9;
    EXPECT_NEAR(torus.exchangeSeconds(0, bytes),
                2.0 * tree.exchangeSeconds(0, bytes), 1e-12);
    EXPECT_NEAR(torus.exchangeSeconds(1, bytes),
                2.0 * tree.exchangeSeconds(1, bytes), 1e-12);
    // Leaf exchanges are neighbor-to-neighbor: same as the tree.
    EXPECT_NEAR(torus.exchangeSeconds(3, bytes),
                tree.exchangeSeconds(3, bytes), 1e-12);
}

TEST(Topology, ConfigValidation)
{
    TopologyConfig bad;
    bad.linkBandwidth = 0.0;
    EXPECT_THROW(TorusTopology(2, bad), util::FatalError);
    EXPECT_THROW(HTreeTopology(24, TopologyConfig{}), util::FatalError);
}

TEST(Topology, ConfigRejectsNonFiniteAndNegative)
{
    // The checks are written as negated comparisons, so NaN (which
    // passes every ordinary '<= 0' test) is rejected too.
    TopologyConfig nan_bw;
    nan_bw.linkBandwidth = std::nan("");
    EXPECT_THROW(HTreeTopology(2, nan_bw), util::FatalError);
    TopologyConfig neg_bw;
    neg_bw.linkBandwidth = -1.0;
    EXPECT_THROW(TorusTopology(2, neg_bw), util::FatalError);
    TopologyConfig inf_root;
    inf_root.rootBisection = std::numeric_limits<double>::infinity();
    EXPECT_THROW(HTreeTopology(2, inf_root), util::FatalError);
    TopologyConfig zero_root;
    zero_root.rootBisection = 0.0;
    EXPECT_THROW(HTreeTopology(2, zero_root), util::FatalError);
    TopologyConfig neg_lat;
    neg_lat.perHopLatency = -1e-9;
    EXPECT_THROW(TorusTopology(2, neg_lat), util::FatalError);
    TopologyConfig nan_lat;
    nan_lat.perHopLatency = std::nan("");
    EXPECT_THROW(HTreeTopology(2, nan_lat), util::FatalError);
    // Zero latency stays legal (the tests above rely on it).
    HTreeTopology ok(2, noLatency());
}

TEST(Faults, LinkCountsFollowTheDocumentedNumbering)
{
    // H-tree: one trunk per internal tree edge, 2^H - 1 in total.
    EXPECT_EQ(HTreeTopology(4, TopologyConfig{}).numLinks(), 15u);
    EXPECT_EQ(HTreeTopology(1, TopologyConfig{}).numLinks(), 1u);
    // Torus: one horizontal and one vertical link per node.
    EXPECT_EQ(TorusTopology(4, TopologyConfig{}).numLinks(), 32u);
    EXPECT_EQ(TorusTopology(3, TopologyConfig{}).numLinks(), 16u);
}

TEST(Faults, ApplyLinkScalesValidates)
{
    HTreeTopology tree(2, TopologyConfig{});
    EXPECT_THROW(tree.applyLinkScales({1.0}), util::FatalError); // size
    EXPECT_THROW(tree.applyLinkScales({1.0, 1.0, 1.5}),
                 util::FatalError); // range
    EXPECT_THROW(tree.applyLinkScales({1.0, -0.1, 1.0}),
                 util::FatalError);
    EXPECT_THROW(tree.applyLinkScales({1.0, std::nan(""), 1.0}),
                 util::FatalError);
    EXPECT_FALSE(tree.degraded());
    tree.applyLinkScales({1.0, 1.0, 1.0});
    EXPECT_TRUE(tree.degraded());
}

TEST(Faults, AllHealthyScalesAreBitIdentical)
{
    // Applying an all-1.0 scale vector must not perturb a single bit
    // of any exchange time, on either topology.
    HTreeTopology tree(4, TopologyConfig{});
    HTreeTopology scaled_tree(4, TopologyConfig{});
    scaled_tree.applyLinkScales(std::vector<double>(15, 1.0));
    TorusTopology torus(4, TopologyConfig{});
    TorusTopology scaled_torus(4, TopologyConfig{});
    scaled_torus.applyLinkScales(std::vector<double>(32, 1.0));
    for (std::size_t h = 0; h < 4; ++h) {
        EXPECT_EQ(tree.exchangeSeconds(h, 9.87e6),
                  scaled_tree.exchangeSeconds(h, 9.87e6))
            << "level " << h;
        EXPECT_EQ(torus.exchangeSeconds(h, 9.87e6),
                  scaled_torus.exchangeSeconds(h, 9.87e6))
            << "level " << h;
        EXPECT_DOUBLE_EQ(scaled_tree.levelPenalty(h), 1.0);
        EXPECT_DOUBLE_EQ(scaled_torus.levelPenalty(h), 1.0);
    }
}

TEST(Faults, HTreePenaltyIsSlowestTrunkOfTheLevel)
{
    // Level-major trunk ids: level h owns ids 2^h-1 .. 2^(h+1)-2.
    HTreeTopology tree(3, noLatency());
    std::vector<double> scales(7, 1.0);
    scales[1] = 0.5;  // one of the two level-1 trunks at half speed
    scales[2] = 0.8;  // the other, milder — the level waits for 0.5
    scales[5] = 0.25; // one level-2 trunk at quarter speed
    tree.applyLinkScales(scales);
    EXPECT_DOUBLE_EQ(tree.levelPenalty(0), 1.0); // root untouched
    EXPECT_DOUBLE_EQ(tree.levelPenalty(1), 2.0);
    EXPECT_DOUBLE_EQ(tree.levelPenalty(2), 4.0);

    // The penalty multiplies the serialization term only: level 0's
    // time is unchanged, level 1's exactly doubles.
    HTreeTopology pristine(3, noLatency());
    EXPECT_EQ(tree.exchangeSeconds(0, 1e7),
              pristine.exchangeSeconds(0, 1e7));
    EXPECT_DOUBLE_EQ(tree.exchangeSeconds(1, 1e7),
                     2.0 * pristine.exchangeSeconds(1, 1e7));
}

TEST(Faults, DeadLinkMakesItsLevelsUnusable)
{
    HTreeTopology tree(2, TopologyConfig{});
    tree.applyLinkScales({0.0, 1.0, 1.0}); // root trunk down
    EXPECT_TRUE(std::isinf(tree.levelPenalty(0)));
    EXPECT_DOUBLE_EQ(tree.levelPenalty(1), 1.0);

    // Torus: a dead link that carries level traffic drives that
    // level's penalty to infinity; a healthy level keeps 1.0.
    TorusTopology torus(2, TopologyConfig{});
    std::vector<double> scales(torus.numLinks(), 0.0);
    torus.applyLinkScales(scales);
    EXPECT_TRUE(std::isinf(torus.levelPenalty(0)));
}

TEST(Faults, TorusReroutedBottleneckScalesTheLevel)
{
    // Throttle every link to the same fraction: the bottleneck link is
    // unchanged in identity, so each level slows by exactly 1/scale.
    TorusTopology torus(3, noLatency());
    TorusTopology pristine(3, noLatency());
    torus.applyLinkScales(std::vector<double>(torus.numLinks(), 0.5));
    for (std::size_t h = 0; h < 3; ++h) {
        EXPECT_DOUBLE_EQ(torus.levelPenalty(h), 2.0) << "level " << h;
        EXPECT_DOUBLE_EQ(torus.exchangeSeconds(h, 3e7),
                         2.0 * pristine.exchangeSeconds(h, 3e7))
            << "level " << h;
    }
}
