/**
 * @file
 * Consistency tests between the two CommModel evaluation paths: the
 * History-based API (used by Algorithms 1/2 and the simulator) and the
 * count-based API (used by the exact joint partitioner). The two must
 * agree bit-for-bit for every reachable history.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/comm_model.hh"
#include "dnn/model_zoo.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::History;
using core::LevelPlan;
using core::Parallelism;

namespace {

/** Random level plan for `layers` layers. */
LevelPlan
randomLevel(std::size_t layers, std::mt19937 &rng)
{
    std::bernoulli_distribution coin(0.5);
    LevelPlan plan(layers, Parallelism::kData);
    for (auto &p : plan)
        if (coin(rng))
            p = Parallelism::kModel;
    return plan;
}

} // namespace

TEST(CommModelCounts, IntraMatchesHistoryPathUnderRandomHistories)
{
    dnn::Network net = dnn::makeAlexNet();
    for (auto scaling : {CommConfig::Scaling::kPartitioned,
                         CommConfig::Scaling::kNone}) {
        CommConfig cfg;
        cfg.scaling = scaling;
        CommModel model(net, cfg);

        std::mt19937 rng(7);
        for (int trial = 0; trial < 20; ++trial) {
            History hist(net.size());
            const int depth = trial % 5;
            std::vector<LevelPlan> pushed;
            for (int d = 0; d < depth; ++d) {
                pushed.push_back(randomLevel(net.size(), rng));
                hist.push(pushed.back());
            }

            for (std::size_t l = 0; l < net.size(); ++l) {
                for (auto p : {Parallelism::kData, Parallelism::kModel}) {
                    EXPECT_DOUBLE_EQ(
                        model.intraBytes(l, p, hist),
                        model.intraBytesAt(l, p, hist.dpCount(l),
                                           hist.mpCount(l)))
                        << "layer " << l << " trial " << trial;
                }
            }
        }
    }
}

TEST(CommModelCounts, InterMatchesHistoryPathUnderRandomHistories)
{
    dnn::Network net = dnn::makeVggA();
    CommModel model(net, CommConfig{});

    std::mt19937 rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        History hist(net.size());
        for (int d = 0; d < trial % 4; ++d)
            hist.push(randomLevel(net.size(), rng));

        for (std::size_t l = 0; l + 1 < net.size(); ++l) {
            for (auto prev : {Parallelism::kData, Parallelism::kModel}) {
                for (auto cur :
                     {Parallelism::kData, Parallelism::kModel}) {
                    EXPECT_DOUBLE_EQ(
                        model.interBytes(l, prev, cur, hist),
                        model.interBytesAt(l, prev, cur,
                                           hist.dpCount(l),
                                           hist.dpCount(l + 1)))
                        << "layer " << l;
                }
            }
        }
    }
}

TEST(CommModelCounts, ScalingIsExactlyPowerOfTwo)
{
    dnn::Network net = dnn::makeLenetC();
    CommModel model(net, CommConfig{});

    const double base =
        model.intraBytesAt(0, Parallelism::kData, 0, 0);
    for (unsigned m = 1; m <= 8; ++m) {
        EXPECT_DOUBLE_EQ(
            model.intraBytesAt(0, Parallelism::kData, 0, m),
            base / std::pow(2.0, m));
        // dp count does not scale the gradient exchange.
        EXPECT_DOUBLE_EQ(
            model.intraBytesAt(0, Parallelism::kData, m, 0), base);
    }

    const double mp_base =
        model.intraBytesAt(0, Parallelism::kModel, 0, 0);
    for (unsigned d = 1; d <= 8; ++d) {
        EXPECT_DOUBLE_EQ(
            model.intraBytesAt(0, Parallelism::kModel, d, 0),
            mp_base / std::pow(2.0, d));
        EXPECT_DOUBLE_EQ(
            model.intraBytesAt(0, Parallelism::kModel, 0, d), mp_base);
    }
}

TEST(CommModelCounts, InterUsesProducerCounts)
{
    // F scales with layer l's dp count; E with layer l+1's.
    dnn::Network net = dnn::makeLenetC();
    CommModel model(net, CommConfig{});

    const double dp_mp0 =
        model.interBytesAt(0, Parallelism::kData, Parallelism::kModel,
                           0, 0);
    // Halving only the F producer: total drops by the F share (half of
    // the dp-mp cost, since F and E contribute 0.25 each).
    const double dp_mp_f_half =
        model.interBytesAt(0, Parallelism::kData, Parallelism::kModel,
                           1, 0);
    EXPECT_DOUBLE_EQ(dp_mp_f_half, dp_mp0 * 0.75);
    // Halving only the E producer mirrors it.
    const double dp_mp_e_half =
        model.interBytesAt(0, Parallelism::kData, Parallelism::kModel,
                           0, 1);
    EXPECT_DOUBLE_EQ(dp_mp_e_half, dp_mp0 * 0.75);

    // mp-dp has no F component at all.
    const double mp_dp =
        model.interBytesAt(0, Parallelism::kModel, Parallelism::kData,
                           5, 0);
    EXPECT_DOUBLE_EQ(
        mp_dp, model.interBytesAt(0, Parallelism::kModel,
                                  Parallelism::kData, 0, 0));
}
