/**
 * @file
 * Tests for the itemized communication report: conservation (itemized
 * totals equal CommModel::planBytes), source attribution, and output
 * formatting.
 */

#include <gtest/gtest.h>

#include "core/comm_report.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "util/logging.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;

TEST(CommReport, TotalsEqualPlanBytesForAllStrategies)
{
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        for (auto strategy :
             {core::Strategy::kDataParallel, core::Strategy::kModelParallel,
              core::Strategy::kOneWeirdTrick, core::Strategy::kHypar}) {
            const auto plan = core::makePlan(strategy, model, 4);
            const auto report = core::buildCommReport(model, plan);
            EXPECT_NEAR(report.totalBytes, model.planBytes(plan),
                        1e-6 * std::max(1.0, report.totalBytes))
                << net.name() << " " << core::toString(strategy);

            // Level view and layer view itemize the same total.
            double level_total = 0.0;
            for (const auto &lv : report.levels)
                level_total += lv.totalBytes();
            EXPECT_NEAR(level_total, report.totalBytes,
                        1e-6 * std::max(1.0, report.totalBytes));
        }
    }
}

TEST(CommReport, DataParallelIsPureGradientTraffic)
{
    dnn::Network net = dnn::makeAlexNet();
    CommModel model(net, CommConfig{});
    const auto report = core::buildCommReport(
        model, core::makeDataParallelPlan(net, 4));
    for (const auto &layer : report.layers) {
        EXPECT_GT(layer.gradBytes, 0.0) << layer.layer;
        EXPECT_DOUBLE_EQ(layer.psumBytes, 0.0) << layer.layer;
        EXPECT_DOUBLE_EQ(layer.featBytes, 0.0) << layer.layer;
        EXPECT_DOUBLE_EQ(layer.errBytes, 0.0) << layer.layer;
        // 15 pair-exchanges of the full gradient, both directions.
        EXPECT_DOUBLE_EQ(layer.gradBytes,
                         15.0 * 2.0 * 4.0 *
                             static_cast<double>(
                                 net.layer(net.layerIndex(layer.layer))
                                     .weightElems()));
    }
    for (const auto &lv : report.levels)
        EXPECT_DOUBLE_EQ(lv.interBytes, 0.0);
}

TEST(CommReport, ModelParallelHasNoGradientTraffic)
{
    dnn::Network net = dnn::makeSfc();
    CommModel model(net, CommConfig{});
    const auto report = core::buildCommReport(
        model, core::makeModelParallelPlan(net, 4));
    for (const auto &layer : report.layers) {
        EXPECT_DOUBLE_EQ(layer.gradBytes, 0.0) << layer.layer;
        EXPECT_GT(layer.psumBytes, 0.0) << layer.layer;
        EXPECT_DOUBLE_EQ(layer.featBytes, 0.0) << layer.layer; // mp-mp
    }
    // mp-mp transitions move errors only.
    for (std::size_t l = 0; l + 1 < net.size(); ++l)
        EXPECT_GT(report.layers[l].errBytes, 0.0);
    // The last layer has no next boundary.
    EXPECT_DOUBLE_EQ(report.layers.back().errBytes, 0.0);
}

TEST(CommReport, HybridPlanShowsBoundaryTraffic)
{
    // AlexNet's HyPar plan is dp convs / mp fcs: the conv5 -> fc1
    // boundary must carry dp-mp feature AND error traffic.
    dnn::Network net = dnn::makeAlexNet();
    CommModel model(net, CommConfig{});
    const auto report = core::buildCommReport(
        model, core::makeHyparPlan(model, 4));
    const auto &conv5 = report.layers[net.layerIndex("conv5")];
    EXPECT_GT(conv5.featBytes, 0.0);
    EXPECT_GT(conv5.errBytes, 0.0);
}

TEST(CommReport, ToStringListsLayersAndLevels)
{
    dnn::Network net = dnn::makeLenetC();
    CommModel model(net, CommConfig{});
    const auto report = core::buildCommReport(
        model, core::makeHyparPlan(model, 4));
    const std::string s = report.toString();
    EXPECT_NE(s.find("conv1"), std::string::npos);
    EXPECT_NE(s.find("fc2"), std::string::npos);
    EXPECT_NE(s.find("H1"), std::string::npos);
    EXPECT_NE(s.find("H4"), std::string::npos);
    EXPECT_NE(s.find("total:"), std::string::npos);
}

TEST(CommReport, RejectsMismatchedPlan)
{
    dnn::Network lenet = dnn::makeLenetC();
    dnn::Network cifar = dnn::makeCifarC();
    CommModel model(lenet, CommConfig{});
    const auto wrong = core::makeDataParallelPlan(cifar, 4);
    EXPECT_THROW((void)core::buildCommReport(model, wrong),
                 util::FatalError);
}
