/**
 * @file
 * Golden tests against the absolute numbers printed in the paper.
 * These pin the model interpretation documented in DESIGN.md Section 2:
 *
 *  - Fig. 8 Data Parallelism column: total communication of the all-dp
 *    plan on 16 accelerators equals (2^4 - 1) * 2 * 4B * params, which
 *    reproduces SFC 16.9 GB, Lenet-c 0.0517 GB, VGG-A 15.9 GB and
 *    VGG-B 16.0 GB to three significant digits.
 *  - Fig. 5(a): HyPar turns SFC's fc1 to data parallelism at H3 (and
 *    only there); every other (layer, level) stays model parallel.
 *  - Fig. 5(b): SCONV is data parallel everywhere, so HyPar's total
 *    communication equals Data Parallelism's (Fig. 8: 0.0121 GB both).
 */

#include <gtest/gtest.h>

#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::Parallelism;

namespace {

/** Paper setup: batch 256, fp32, H = 4 (sixteen accelerators). */
constexpr std::size_t kLevels = 4;

double
dataParallelBytes(const dnn::Network &net)
{
    CommModel model(net, CommConfig{});
    const auto plan = core::makeDataParallelPlan(net, kLevels);
    return model.planBytes(plan);
}

} // namespace

TEST(PaperNumbers, Fig8DataParallelSfc)
{
    // Paper: 16.9 GB.
    const double gb = dataParallelBytes(dnn::makeSfc()) / 1e9;
    EXPECT_NEAR(gb, 16.9, 0.05);
}

TEST(PaperNumbers, Fig8DataParallelLenet)
{
    // Paper: 0.0517 GB.
    const double gb = dataParallelBytes(dnn::makeLenetC()) / 1e9;
    EXPECT_NEAR(gb, 0.0517, 0.0002);
}

TEST(PaperNumbers, Fig8DataParallelVggA)
{
    // Paper: 15.9 GB.
    const double gb = dataParallelBytes(dnn::makeVggA()) / 1e9;
    EXPECT_NEAR(gb, 15.9, 0.1);
}

TEST(PaperNumbers, Fig8DataParallelVggB)
{
    // Paper: 16.0 GB.
    const double gb = dataParallelBytes(dnn::makeVggB()) / 1e9;
    EXPECT_NEAR(gb, 16.0, 0.1);
}

TEST(PaperNumbers, DataParallelClosedForm)
{
    // All-dp communication is exactly (2^H - 1) * 2 * wordBytes * params
    // for any network: gradients are exchanged whole at every level.
    for (const auto &net : dnn::allModels()) {
        const double expect = 15.0 * 2.0 * 4.0 *
                              static_cast<double>(net.totalParamElems());
        EXPECT_DOUBLE_EQ(dataParallelBytes(net), expect) << net.name();
    }
}

TEST(PaperNumbers, Fig5aSfcFc1FlipsToDpAtH3Only)
{
    dnn::Network sfc = dnn::makeSfc();
    CommModel model(sfc, CommConfig{});
    const auto result =
        core::HierarchicalPartitioner(model).partition(kLevels);

    ASSERT_EQ(result.plan.numLevels(), kLevels);
    ASSERT_EQ(result.plan.numLayers(), 4u);

    for (std::size_t h = 0; h < kLevels; ++h) {
        for (std::size_t l = 0; l < 4; ++l) {
            const bool is_fc1_h3 = (h == 2 && l == 0);
            const Parallelism expect =
                is_fc1_h3 ? Parallelism::kData : Parallelism::kModel;
            EXPECT_EQ(result.plan.levels[h][l], expect)
                << "layer " << l << " level H" << (h + 1);
        }
    }
}

TEST(PaperNumbers, Fig5bSconvAllDataParallel)
{
    dnn::Network sconv = dnn::makeSconv();
    CommModel model(sconv, CommConfig{});
    const auto result =
        core::HierarchicalPartitioner(model).partition(kLevels);

    for (const auto &level : result.plan.levels)
        for (Parallelism p : level)
            EXPECT_EQ(p, Parallelism::kData);

    // Fig. 8: SCONV's HyPar communication equals Data Parallelism's.
    EXPECT_DOUBLE_EQ(result.commBytes, dataParallelBytes(sconv));
}

TEST(PaperNumbers, Fig5LargeNetsConvDpFcMpAtTopLevel)
{
    // Section 6.2.1: for the large-scale networks the convolutional
    // layers are usually data parallel and the fully-connected layers
    // model parallel. At the top hierarchy level this holds exactly.
    for (const auto &name : {"AlexNet", "VGG-A", "VGG-E"}) {
        dnn::Network net = dnn::modelByName(name);
        CommModel model(net, CommConfig{});
        const auto result =
            core::HierarchicalPartitioner(model).partition(kLevels);
        for (std::size_t l = 0; l < net.size(); ++l) {
            const Parallelism expect = net.layer(l).isConv()
                                           ? Parallelism::kData
                                           : Parallelism::kModel;
            EXPECT_EQ(result.plan.levels[0][l], expect)
                << name << " layer " << net.layer(l).name;
        }
    }
}

TEST(PaperNumbers, HyparBeatsOrMatchesDefaultsEverywhere)
{
    // Section 6.2.4's headline: HyPar's total communication is never
    // worse than default Data or Model Parallelism on any of the ten
    // networks (equality only for SCONV vs DP).
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        const auto hypar =
            core::HierarchicalPartitioner(model).partition(kLevels);
        const double dp = model.planBytes(
            core::makeDataParallelPlan(net, kLevels));
        const double mp = model.planBytes(
            core::makeModelParallelPlan(net, kLevels));
        EXPECT_LE(hypar.commBytes, dp) << net.name();
        EXPECT_LE(hypar.commBytes, mp) << net.name();
    }
}

TEST(PaperNumbers, HyparBeatsOrMatchesOneWeirdTrick)
{
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        const auto hypar =
            core::HierarchicalPartitioner(model).partition(kLevels);
        const double owt = model.planBytes(
            core::makeOneWeirdTrickPlan(net, kLevels));
        EXPECT_LE(hypar.commBytes, owt) << net.name();
    }
}

TEST(PaperNumbers, ModelParallelWorstForConvNets)
{
    // Section 6.2.4: MP communication is roughly an order of magnitude
    // above DP for the conv-heavy ImageNet networks...
    for (const auto &name : {"AlexNet", "VGG-A", "VGG-E"}) {
        dnn::Network net = dnn::modelByName(name);
        CommModel model(net, CommConfig{});
        const double dp = model.planBytes(
            core::makeDataParallelPlan(net, kLevels));
        const double mp = model.planBytes(
            core::makeModelParallelPlan(net, kLevels));
        EXPECT_GT(mp, 2.0 * dp) << name;
    }

    // ...but *lower* than DP for the all-fc extreme case SFC.
    dnn::Network sfc = dnn::makeSfc();
    CommModel model(sfc, CommConfig{});
    EXPECT_LT(model.planBytes(core::makeModelParallelPlan(sfc, kLevels)),
              model.planBytes(core::makeDataParallelPlan(sfc, kLevels)));
}

TEST(PaperNumbers, ZooParameterCounts)
{
    // Reference parameter counts (no biases, Section 2 conventions).
    EXPECT_EQ(dnn::makeSfc().totalParamElems(), 140722176u);
    EXPECT_EQ(dnn::makeLenetC().totalParamElems(), 430500u);
    EXPECT_EQ(dnn::makeVggA().totalParamElems(), 132851392u);
    EXPECT_EQ(dnn::makeVggB().totalParamElems(), 133035712u);
    EXPECT_EQ(dnn::makeVggD().totalParamElems(), 138344128u);
    EXPECT_EQ(dnn::makeVggE().totalParamElems(), 143652544u);
}
