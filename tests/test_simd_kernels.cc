/**
 * @file
 * Bit-equivalence suite for the runtime-dispatched SIMD kernel pairs
 * (core/simd_kernels.hh): the scalar and AVX2 sets must agree
 * bit-for-bit — values via EXPECT_EQ on doubles, argmin winners and
 * relax provenance exactly — across H = 1..16, including array
 * lengths that are not multiples of the 4-double AVX2 lane width, so
 * every tail path runs. A straight-line reference implementation
 * inside the test pins the scalar set itself, so a bug cannot hide in
 * both sets at once. Runs under ASan/UBSan in CI like every other
 * differential suite.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "core/simd_kernels.hh"

using namespace hypar;
using core::simd::avx2Available;
using core::simd::avx2Kernels;
using core::simd::Kernels;
using core::simd::scalarKernels;

namespace {

/** Deterministic positive table entries, cost-like magnitudes. */
std::vector<double>
randomTable(std::mt19937_64 &rng, std::size_t n)
{
    std::uniform_real_distribution<double> dist(0.0, 1e9);
    std::vector<double> out(n);
    for (double &v : out)
        v = dist(rng);
    return out;
}

std::vector<std::uint8_t>
popcountTable(std::size_t n)
{
    std::vector<std::uint8_t> pcnt(n);
    for (std::size_t i = 0; i < n; ++i)
        pcnt[i] = static_cast<std::uint8_t>(
            std::popcount(static_cast<std::uint32_t>(i)));
    return pcnt;
}

/** The sizes every kernel test sweeps: all powers of two up to 2^16
 * (the real engines' shapes) plus non-multiple-of-4 lengths that
 * exercise the vector tails. */
std::vector<std::size_t>
testSizes()
{
    std::vector<std::size_t> sizes{1, 2, 3, 5, 6, 7, 9, 13, 31, 100, 1001};
    for (std::size_t h = 1; h <= 16; ++h)
        sizes.push_back(std::size_t{1} << h);
    return sizes;
}

} // namespace

TEST(SimdKernels, ActiveSetIsWellFormed)
{
    const Kernels &k = core::simd::activeKernels();
    EXPECT_NE(k.name, nullptr);
    EXPECT_NE(k.expandLevel, nullptr);
    EXPECT_NE(k.argminAdd, nullptr);
    EXPECT_NE(k.relaxRow, nullptr);
}

TEST(SimdKernels, ExpandLevelMatchesReferenceAndAvx2)
{
    std::mt19937_64 rng(20260808);
    for (std::size_t levels = 1; levels <= 16; ++levels) {
        const std::size_t states = std::size_t{1} << levels;
        const auto pcnt = popcountTable(states);
        // One full expansion cascade, exactly like the engines run it:
        // level h doubles the populated prefix from 2^h to 2^(h+1).
        const auto rows = randomTable(rng, levels * 2 * (levels + 1));
        std::vector<double> ref(states), scl(states), vec(states);
        ref[0] = scl[0] = vec[0] = 0.0;
        for (std::size_t h = 0; h < levels; ++h) {
            const std::size_t half = std::size_t{1} << h;
            const double *row0 = &rows[(h * 2 + 0) * (levels + 1)];
            const double *row1 = &rows[(h * 2 + 1) * (levels + 1)];
            // Straight-line reference.
            for (std::size_t i = half; i-- > 0;) {
                const unsigned a =
                    static_cast<unsigned>(h) - pcnt[i];
                const double acc = ref[i];
                ref[i] = acc + row0[a];
                ref[i + half] = acc + row1[a];
            }
            scalarKernels().expandLevel(scl.data(), half, row0, row1,
                                        pcnt.data(),
                                        static_cast<unsigned>(h));
            if (avx2Available())
                avx2Kernels().expandLevel(vec.data(), half, row0, row1,
                                          pcnt.data(),
                                          static_cast<unsigned>(h));
        }
        for (std::size_t s = 0; s < states; ++s) {
            EXPECT_EQ(ref[s], scl[s]) << "H=" << levels << " s=" << s;
            if (avx2Available())
                EXPECT_EQ(ref[s], vec[s])
                    << "H=" << levels << " s=" << s;
        }
    }
}

TEST(SimdKernels, ArgminAddMatchesAcrossSizesAndTails)
{
    std::mt19937_64 rng(977);
    for (const std::size_t n : testSizes()) {
        auto cost = randomTable(rng, n);
        auto trans = randomTable(rng, n);
        // Plant exact ties (same summands => same float sum) so the
        // lowest-index rule is actually exercised, including across
        // the vector/tail boundary.
        if (n >= 8) {
            cost[n / 2] = cost[1];
            trans[n / 2] = trans[1];
            cost[n - 1] = cost[1];
            trans[n - 1] = trans[1];
        }
        double ref_min = std::numeric_limits<double>::infinity();
        std::uint32_t ref_p = 0;
        for (std::size_t p = 0; p < n; ++p) {
            const double c = cost[p] + trans[p];
            if (c < ref_min) {
                ref_min = c;
                ref_p = static_cast<std::uint32_t>(p);
            }
        }
        double m_s = -1.0, m_v = -1.0;
        const std::uint32_t p_s = scalarKernels().argminAdd(
            cost.data(), trans.data(), n, &m_s);
        EXPECT_EQ(ref_min, m_s) << "n=" << n;
        EXPECT_EQ(ref_p, p_s) << "n=" << n;
        if (avx2Available()) {
            const std::uint32_t p_v = avx2Kernels().argminAdd(
                cost.data(), trans.data(), n, &m_v);
            EXPECT_EQ(ref_min, m_v) << "n=" << n;
            EXPECT_EQ(ref_p, p_v) << "n=" << n;
        }
    }
}

TEST(SimdKernels, ArgminAddAllInfiniteReturnsIndexZero)
{
    const std::size_t n = 13; // vector body + tail
    const std::vector<double> cost(
        n, std::numeric_limits<double>::infinity());
    const std::vector<double> trans(n, 1.0);
    double m = 0.0;
    EXPECT_EQ(0u, scalarKernels().argminAdd(cost.data(), trans.data(),
                                            n, &m));
    EXPECT_EQ(std::numeric_limits<double>::infinity(), m);
    if (avx2Available()) {
        EXPECT_EQ(0u, avx2Kernels().argminAdd(cost.data(),
                                              trans.data(), n, &m));
        EXPECT_EQ(std::numeric_limits<double>::infinity(), m);
    }
}

TEST(SimdKernels, RelaxRowMatchesAndKeepsIncumbentOnTies)
{
    std::mt19937_64 rng(40429);
    for (const std::size_t n : testSizes()) {
        const auto trans = randomTable(rng, n);
        auto best_ref = randomTable(rng, n);
        // Exact ties at a vector lane and at the tail: the incumbent
        // (lower p, already stored) must survive in both sets.
        const double cost_p = 1234.5;
        if (n >= 8) {
            best_ref[2] = cost_p + trans[2];
            best_ref[n - 1] = cost_p + trans[n - 1];
        }
        std::vector<std::uint32_t> prev_ref(n, 7);
        auto best_s = best_ref;
        auto prev_s = prev_ref;
        auto best_v = best_ref;
        auto prev_v = prev_ref;

        const std::uint32_t p = 42;
        for (std::size_t s = 0; s < n; ++s) {
            const double c = cost_p + trans[s];
            if (c < best_ref[s]) {
                best_ref[s] = c;
                prev_ref[s] = p;
            }
        }
        scalarKernels().relaxRow(best_s.data(), prev_s.data(),
                                 trans.data(), cost_p, p, n);
        if (avx2Available())
            avx2Kernels().relaxRow(best_v.data(), prev_v.data(),
                                   trans.data(), cost_p, p, n);
        for (std::size_t s = 0; s < n; ++s) {
            EXPECT_EQ(best_ref[s], best_s[s]) << "n=" << n << " s=" << s;
            EXPECT_EQ(prev_ref[s], prev_s[s]) << "n=" << n << " s=" << s;
            if (avx2Available()) {
                EXPECT_EQ(best_ref[s], best_v[s])
                    << "n=" << n << " s=" << s;
                EXPECT_EQ(prev_ref[s], prev_v[s])
                    << "n=" << n << " s=" << s;
            }
        }
    }
}
