/**
 * @file
 * Unit tests for the communication model against the paper's own
 * arithmetic: Table 1 / Table 2 semantics, the Section 3.1/3.4 worked
 * examples and the Section 6.5.2 layer amounts.
 */

#include <gtest/gtest.h>

#include "core/comm_model.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"
#include "util/logging.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::History;
using core::Parallelism;

namespace {

/** The Section 3.1 fully-connected example: 70 -> 100, batch 32. */
dnn::Network
exampleFc()
{
    return dnn::NetworkBuilder("ex-fc", {70, 1, 1})
        .fc("fc", 100)
        .build();
}

/** The Section 3.4 conv example: 12x12x20 -> 8x8x50 with 5x5 kernels. */
dnn::Network
exampleConv()
{
    return dnn::NetworkBuilder("ex-conv", {20, 12, 12})
        .conv("conv", 50, 5)
        .build();
}

CommConfig
batch32()
{
    CommConfig cfg;
    cfg.batch = 32;
    return cfg;
}

} // namespace

TEST(CommModel, AmountsFcExample)
{
    CommModel model(exampleFc(), batch32());
    EXPECT_DOUBLE_EQ(model.weightBytes(0), 70.0 * 100 * 4);
    EXPECT_DOUBLE_EQ(model.outRawBytes(0), 32.0 * 100 * 4);
    EXPECT_DOUBLE_EQ(model.boundaryBytes(0), 32.0 * 100 * 4);
}

TEST(CommModel, IntraFcExampleMatchesPaper)
{
    // Section 3.4: dp = 56 KB = 2 x 70x100 x 4 B; mp = 25.6 KB.
    CommModel model(exampleFc(), batch32());
    History hist(1);
    EXPECT_DOUBLE_EQ(model.intraBytes(0, Parallelism::kData, hist),
                     56000.0);
    EXPECT_DOUBLE_EQ(model.intraBytes(0, Parallelism::kModel, hist),
                     25600.0);
}

TEST(CommModel, IntraConvExampleMatchesPaper)
{
    // Section 3.4: dp = 200 KB = 2 x 5x5x20x50 x 4 B; mp = 819.2 KB =
    // 2 x 32x8x8x50 x 4 B.
    CommModel model(exampleConv(), batch32());
    History hist(1);
    EXPECT_DOUBLE_EQ(model.intraBytes(0, Parallelism::kData, hist),
                     200000.0);
    EXPECT_DOUBLE_EQ(model.intraBytes(0, Parallelism::kModel, hist),
                     819200.0);
}

TEST(CommModel, Section652LayerAmounts)
{
    // conv5 of VGG-E: A(dW) = 512*512*3^2 = 2,359,296 elements and
    // A(F_{l+1}) = 32*512*14*14 = 3,211,264 elements at batch 32.
    dnn::Network vgg_e = dnn::makeVggE();
    CommConfig cfg;
    cfg.batch = 32;
    CommModel model(vgg_e, cfg);
    const std::size_t conv5 = vgg_e.layerIndex("conv5_4");
    EXPECT_DOUBLE_EQ(model.weightBytes(conv5), 2359296.0 * 4);
    EXPECT_DOUBLE_EQ(model.outRawBytes(conv5), 3211264.0 * 4);

    // fc3: A(dW) = 4096*1000; A(F) = B*1000 = 4,096,000 at batch 4096.
    cfg.batch = 4096;
    CommModel model_b4096(vgg_e, cfg);
    const std::size_t fc3 = vgg_e.layerIndex("fc3");
    EXPECT_DOUBLE_EQ(model_b4096.weightBytes(fc3), 4096000.0 * 4);
    EXPECT_DOUBLE_EQ(model_b4096.outRawBytes(fc3), 4096000.0 * 4);
}

TEST(CommModel, InterLayerTable2)
{
    // Two fc layers so every transition type is well-defined.
    dnn::Network net = dnn::NetworkBuilder("two-fc", {64, 1, 1})
                           .fc("a", 128)
                           .fc("b", 32)
                           .build();
    CommConfig cfg;
    cfg.batch = 16;
    CommModel model(net, cfg);
    History hist(2);

    const double boundary = 16.0 * 128 * 4; // F_{l+1} = E_{l+1} bytes
    const auto dp = Parallelism::kData;
    const auto mp = Parallelism::kModel;

    EXPECT_DOUBLE_EQ(model.interBytes(0, dp, dp, hist), 0.0);
    EXPECT_DOUBLE_EQ(model.interBytes(0, dp, mp, hist),
                     2.0 * (0.25 * boundary + 0.25 * boundary));
    EXPECT_DOUBLE_EQ(model.interBytes(0, mp, mp, hist),
                     2.0 * 0.5 * boundary);
    EXPECT_DOUBLE_EQ(model.interBytes(0, mp, dp, hist),
                     2.0 * 0.5 * boundary);
}

TEST(CommModel, InterLayerSplitsIntoFAndE)
{
    dnn::Network net = dnn::NetworkBuilder("two-fc", {64, 1, 1})
                           .fc("a", 128)
                           .fc("b", 32)
                           .build();
    CommModel model(net, CommConfig{});
    History hist(2);

    for (auto prev : {Parallelism::kData, Parallelism::kModel}) {
        for (auto cur : {Parallelism::kData, Parallelism::kModel}) {
            EXPECT_DOUBLE_EQ(
                model.interBytes(0, prev, cur, hist),
                model.interBytesF(0, prev, cur, hist) +
                    model.interBytesE(0, prev, cur, hist));
        }
    }
}

TEST(CommModel, PoolingShrinksBoundaryButNotIntraMp)
{
    // conv with 2x2 pooling: the mp partial-sum exchange happens on the
    // raw output; the boundary tensor to the next layer is pooled.
    dnn::Network net = dnn::NetworkBuilder("pooled", {1, 28, 28})
                           .conv("c1", 20, 5).maxPool(2)
                           .conv("c2", 50, 5)
                           .build();
    CommConfig cfg;
    cfg.batch = 8;
    CommModel model(net, cfg);

    EXPECT_DOUBLE_EQ(model.outRawBytes(0), 8.0 * 20 * 24 * 24 * 4);
    EXPECT_DOUBLE_EQ(model.boundaryBytes(0), 8.0 * 20 * 12 * 12 * 4);

    History hist(2);
    EXPECT_DOUBLE_EQ(model.intraBytes(0, Parallelism::kModel, hist),
                     2.0 * 8 * 20 * 24 * 24 * 4);
    EXPECT_DOUBLE_EQ(
        model.interBytes(0, Parallelism::kModel, Parallelism::kData,
                         hist),
        2.0 * 0.5 * 8 * 20 * 12 * 12 * 4);
}

TEST(CommModel, PartitionedScalingHalvesAmounts)
{
    dnn::Network net = exampleFc();
    CommModel model(net, batch32());

    History hist(1);
    const double dp0 = model.intraBytes(0, Parallelism::kData, hist);
    const double mp0 = model.intraBytes(0, Parallelism::kModel, hist);

    // One upper dp level: batch halves -> mp intra halves, dp intra
    // unchanged (full-shape gradient partial sums).
    History one_dp(1);
    one_dp.push({Parallelism::kData});
    EXPECT_DOUBLE_EQ(model.intraBytes(0, Parallelism::kData, one_dp), dp0);
    EXPECT_DOUBLE_EQ(model.intraBytes(0, Parallelism::kModel, one_dp),
                     mp0 / 2.0);

    // One upper mp level: kernel halves -> dp intra halves, mp intra
    // unchanged (each group holds the full reduced output).
    History one_mp(1);
    one_mp.push({Parallelism::kModel});
    EXPECT_DOUBLE_EQ(model.intraBytes(0, Parallelism::kData, one_mp),
                     dp0 / 2.0);
    EXPECT_DOUBLE_EQ(model.intraBytes(0, Parallelism::kModel, one_mp),
                     mp0);
}

TEST(CommModel, ScalingNoneIgnoresHistory)
{
    CommConfig cfg = batch32();
    cfg.scaling = CommConfig::Scaling::kNone;
    CommModel model(exampleFc(), cfg);

    History deep(1);
    deep.push({Parallelism::kData});
    deep.push({Parallelism::kModel});

    History empty(1);
    for (auto p : {Parallelism::kData, Parallelism::kModel}) {
        EXPECT_DOUBLE_EQ(model.intraBytes(0, p, deep),
                         model.intraBytes(0, p, empty));
    }
}

TEST(CommModel, ExchangeFactorScalesEverything)
{
    CommConfig one = batch32();
    one.exchangeFactor = 1.0;
    CommModel m1(exampleFc(), one);
    CommModel m2(exampleFc(), batch32());

    History hist(1);
    for (auto p : {Parallelism::kData, Parallelism::kModel}) {
        EXPECT_DOUBLE_EQ(2.0 * m1.intraBytes(0, p, hist),
                         m2.intraBytes(0, p, hist));
    }
}

TEST(CommModel, PlanBytesSumsLevels)
{
    dnn::Network net = exampleFc();
    CommModel model(net, batch32());

    // All-dp over 2 levels: per-pair cost is the dp intra at both
    // levels (gradients do not shrink under dp), weighted 1x and 2x.
    core::HierarchicalPlan dp2 =
        core::uniformPlan(net.size(), 2, Parallelism::kData);
    History hist(1);
    const double pair = model.intraBytes(0, Parallelism::kData, hist);
    EXPECT_DOUBLE_EQ(model.planBytes(dp2), pair * (1.0 + 2.0));
}

TEST(CommModel, RejectsBadConfigs)
{
    dnn::Network net = exampleFc();
    CommConfig cfg;
    cfg.batch = 0;
    EXPECT_THROW((void)CommModel(net, cfg), util::FatalError);

    cfg = CommConfig{};
    cfg.wordBytes = 0.0;
    EXPECT_THROW((void)CommModel(net, cfg), util::FatalError);

    cfg = CommConfig{};
    cfg.exchangeFactor = -1.0;
    EXPECT_THROW((void)CommModel(net, cfg), util::FatalError);
}

TEST(CommModel, PairBytesRejectsWrongPlanSize)
{
    CommModel model(exampleFc(), batch32());
    History hist(1);
    core::LevelPlan too_long(2, Parallelism::kData);
    EXPECT_THROW((void)model.pairBytes(too_long, hist), util::FatalError);
}
