/**
 * @file
 * Tests for the discrete-event queue: ordering, tie-breaking, nested
 * scheduling, and misuse detection.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "util/logging.hh"

using namespace hypar;
using sim::EventQueue;

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
    EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, SimultaneousEventsKeepInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(1.0, [&, i] { order.push_back(i); });
    q.run();
    const std::vector<int> expect{0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue q;
    std::vector<double> times;
    std::function<void()> tick = [&] {
        times.push_back(q.now());
        if (times.size() < 4)
            q.scheduleAfter(0.5, tick);
    };
    q.schedule(0.0, tick);
    q.run();
    ASSERT_EQ(times.size(), 4u);
    EXPECT_DOUBLE_EQ(times[3], 1.5);
}

TEST(EventQueue, RejectsPastAndNegative)
{
    EventQueue q;
    q.schedule(5.0, [] {});
    q.run();
    EXPECT_THROW(q.schedule(1.0, [] {}), util::PanicError);
    EXPECT_THROW(q.scheduleAfter(-1.0, [] {}), util::PanicError);
}

TEST(EventQueue, ZeroDelaySelfScheduleTerminates)
{
    EventQueue q;
    int count = 0;
    std::function<void()> again = [&] {
        if (++count < 100)
            q.scheduleAfter(0.0, again);
    };
    q.schedule(0.0, again);
    q.run();
    EXPECT_EQ(count, 100);
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
}
