/**
 * @file
 * Tests for the evaluation facade: strategy comparison, topology
 * dispatch, and the Fig. 6/7-style normalizations.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "sim/evaluator.hh"
#include "util/logging.hh"

using namespace hypar;
using sim::Evaluator;
using sim::SimConfig;
using sim::TopologyKind;

TEST(Evaluator, DefaultsMatchPaperSetup)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.levels, 4u);
    EXPECT_EQ(cfg.comm.batch, 256u);
    EXPECT_EQ(cfg.topology, TopologyKind::kHTree);
}

TEST(Evaluator, MakeTopologyDispatch)
{
    const auto tree =
        sim::makeTopology(TopologyKind::kHTree, 4, noc::TopologyConfig{});
    EXPECT_EQ(tree->name(), "H-tree");
    const auto torus =
        sim::makeTopology(TopologyKind::kTorus, 4, noc::TopologyConfig{});
    EXPECT_EQ(torus->name(), "Torus");
}

TEST(Evaluator, EvaluatesStrategiesAndPlans)
{
    Evaluator ev(dnn::makeLenetC(), SimConfig{});
    const auto by_strategy = ev.evaluate(core::Strategy::kDataParallel);
    const auto by_plan =
        ev.evaluate(core::makeDataParallelPlan(ev.network(), 4));
    EXPECT_DOUBLE_EQ(by_strategy.stepSeconds, by_plan.stepSeconds);
    EXPECT_DOUBLE_EQ(
        ev.commBytes(ev.plan(core::Strategy::kDataParallel)),
        by_plan.commBytes);
}

TEST(Evaluator, StrategyReportRatios)
{
    const auto report =
        sim::compareStrategies(dnn::makeAlexNet(), SimConfig{});
    EXPECT_GT(report.hyparSpeedup(), 1.0);  // HyPar beats DP
    EXPECT_LT(report.mpSpeedup(), 1.0);     // MP loses on AlexNet
    EXPECT_GT(report.hyparEnergyEff(), 1.0);
    EXPECT_EQ(report.hyparPlan.numLevels(), 4u);
}

TEST(Evaluator, SconvDegeneratesToDataParallelism)
{
    // Fig. 6/7/8: SCONV's HyPar result equals Data Parallelism exactly.
    const auto report =
        sim::compareStrategies(dnn::makeSconv(), SimConfig{});
    EXPECT_DOUBLE_EQ(report.hyparSpeedup(), 1.0);
    EXPECT_DOUBLE_EQ(report.hyparEnergyEff(), 1.0);
}

TEST(Evaluator, SfcPrefersModelParallelism)
{
    // Fig. 6: for the all-fc extreme case, MP beats DP and HyPar beats
    // both.
    const auto report =
        sim::compareStrategies(dnn::makeSfc(), SimConfig{});
    EXPECT_GT(report.mpSpeedup(), 1.0);
    EXPECT_GE(report.hyparSpeedup(), report.mpSpeedup());
}

TEST(Evaluator, TorusSlowerThanHTreeForHypar)
{
    // Fig. 12's claim, checked end-to-end on one conv network.
    SimConfig tree_cfg;
    SimConfig torus_cfg;
    torus_cfg.topology = TopologyKind::kTorus;

    Evaluator tree(dnn::makeAlexNet(), tree_cfg);
    Evaluator torus(dnn::makeAlexNet(), torus_cfg);
    const auto plan = tree.plan(core::Strategy::kHypar);
    EXPECT_LE(tree.evaluate(plan).stepSeconds,
              torus.evaluate(plan).stepSeconds * (1 + 1e-9));
}

TEST(Evaluator, LevelsControlArraySize)
{
    SimConfig cfg;
    cfg.levels = 2;
    Evaluator ev(dnn::makeLenetC(), cfg);
    EXPECT_EQ(ev.plan(core::Strategy::kHypar).numAccelerators(), 4u);
    EXPECT_EQ(ev.topology().numNodes(), 4u);
}

TEST(Evaluator, SingleAcceleratorHasNoComm)
{
    SimConfig cfg;
    cfg.levels = 0;
    Evaluator ev(dnn::makeLenetC(), cfg);
    const auto m = ev.evaluate(core::Strategy::kDataParallel);
    EXPECT_DOUBLE_EQ(m.commBytes, 0.0);
    EXPECT_DOUBLE_EQ(m.networkBusySeconds, 0.0);
    EXPECT_GT(m.stepSeconds, 0.0);
}
