/**
 * @file
 * Unit tests for util::ThreadPool: coverage, determinism of the fixed
 * chunk grid, exception propagation, and the serial degradation path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

using hypar::util::ThreadPool;

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (std::size_t workers : {0u, 1u, 3u}) {
        ThreadPool pool(workers);
        for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
            std::vector<std::atomic<int>> hits(n);
            pool.parallelFor(0, n, 13, [&](std::size_t b, std::size_t e) {
                for (std::size_t i = b; i < e; ++i)
                    hits[i].fetch_add(1);
            });
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(hits[i].load(), 1) << "index " << i;
        }
    }
}

TEST(ThreadPool, ChunkGridDependsOnlyOnGrain)
{
    // The chunk boundaries must be the same for every worker count —
    // that is what makes per-chunk state deterministic.
    auto boundaries = [](std::size_t workers) {
        ThreadPool pool(workers);
        std::vector<std::pair<std::size_t, std::size_t>> chunks(100);
        pool.parallelFor(5, 1000, 10,
                         [&](std::size_t b, std::size_t e) {
                             chunks[(b - 5) / 10] = {b, e};
                         });
        return chunks;
    };
    const auto serial = boundaries(0);
    EXPECT_EQ(serial, boundaries(2));
    EXPECT_EQ(serial, boundaries(5));
    for (std::size_t c = 0; c + 1 < serial.size(); ++c)
        EXPECT_EQ(serial[c].second, serial[c + 1].first);
    EXPECT_EQ(serial.front().first, 5u);
    EXPECT_EQ(serial.back().second, 1000u);
}

TEST(ThreadPool, ReduceIsBitIdenticalAcrossThreadCounts)
{
    // Non-associative floating-point reduction: combining partials in
    // chunk order must give the same bits for any parallelism.
    std::vector<double> data(10000);
    double v = 1.0;
    for (auto &x : data) {
        x = v;
        v *= 1.0000001;
    }
    auto sum = [&](std::size_t workers) {
        ThreadPool pool(workers);
        return pool.parallelReduce(
            0, data.size(), 37, 0.0,
            [&](std::size_t b, std::size_t e) {
                double s = 0.0;
                for (std::size_t i = b; i < e; ++i)
                    s += data[i];
                return s;
            },
            [](double a, double b) { return a + b; });
    };
    const double serial = sum(0);
    EXPECT_EQ(serial, sum(1));
    EXPECT_EQ(serial, sum(4));
}

TEST(ThreadPool, PropagatesBodyExceptions)
{
    for (std::size_t workers : {0u, 2u}) {
        ThreadPool pool(workers);
        EXPECT_THROW(
            pool.parallelFor(0, 100, 5,
                             [&](std::size_t b, std::size_t) {
                                 if (b >= 50)
                                     throw std::runtime_error("boom");
                             }),
            std::runtime_error);
        // The pool must stay usable after a failed batch.
        std::atomic<int> count{0};
        pool.parallelFor(0, 10, 1,
                         [&](std::size_t, std::size_t) { ++count; });
        EXPECT_EQ(count.load(), 10);
    }
}

TEST(ThreadPool, GlobalPoolIsUsable)
{
    auto &pool = ThreadPool::global();
    EXPECT_GE(pool.parallelism(), 1u);
    std::atomic<long> sum{0};
    pool.parallelFor(1, 101, 8, [&](std::size_t b, std::size_t e) {
        long s = 0;
        for (std::size_t i = b; i < e; ++i)
            s += static_cast<long>(i);
        sum += s;
    });
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, NestedCallsOnTheSamePoolRunInline)
{
    // A body that re-enters its own pool must not deadlock waiting for
    // workers it is itself occupying: nested calls run inline, and the
    // fixed chunk grid keeps the result bit-identical either way.
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(64);
    pool.parallelFor(0, 8, 1, [&](std::size_t ob, std::size_t oe) {
        for (std::size_t o = ob; o < oe; ++o)
            pool.parallelFor(0, 8, 2,
                             [&](std::size_t b, std::size_t e) {
                                 for (std::size_t i = b; i < e; ++i)
                                     hits[o * 8 + i].fetch_add(1);
                             });
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;

    // A *different* pool inside the body is not nested and keeps its
    // own parallelism.
    ThreadPool outer(2);
    ThreadPool inner(2);
    std::atomic<int> count{0};
    outer.parallelFor(0, 4, 1, [&](std::size_t, std::size_t) {
        inner.parallelFor(0, 4, 1,
                          [&](std::size_t, std::size_t) { ++count; });
    });
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, ConcurrentTopLevelSubmissionsSerialize)
{
    // Two threads submitting to the same pool at once (the serving
    // tier's request groups do this) must both complete with full
    // coverage — the submission mutex lines the batches up.
    ThreadPool shared(3);
    ThreadPool driver(4);
    std::vector<std::atomic<int>> hits(4 * 100);
    driver.parallelFor(0, 4, 1, [&](std::size_t tb, std::size_t te) {
        for (std::size_t t = tb; t < te; ++t)
            shared.parallelFor(0, 100, 7,
                               [&](std::size_t b, std::size_t e) {
                                   for (std::size_t i = b; i < e; ++i)
                                       hits[t * 100 + i].fetch_add(1);
                               });
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}
