file(REMOVE_RECURSE
  "CMakeFiles/example_alexnet_planner.dir/examples/alexnet_planner.cpp.o"
  "CMakeFiles/example_alexnet_planner.dir/examples/alexnet_planner.cpp.o.d"
  "example_alexnet_planner"
  "example_alexnet_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_alexnet_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
