# Empty dependencies file for example_alexnet_planner.
# This may be replaced when dependencies are built.
