file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_owt.dir/bench/bench_fig13_owt.cc.o"
  "CMakeFiles/bench_fig13_owt.dir/bench/bench_fig13_owt.cc.o.d"
  "bench_fig13_owt"
  "bench_fig13_owt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_owt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
