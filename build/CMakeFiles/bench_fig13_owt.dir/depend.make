# Empty dependencies file for bench_fig13_owt.
# This may be replaced when dependencies are built.
