# Empty dependencies file for bench_partitioner_micro.
# This may be replaced when dependencies are built.
