file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioner_micro.dir/bench/bench_partitioner_micro.cc.o"
  "CMakeFiles/bench_partitioner_micro.dir/bench/bench_partitioner_micro.cc.o.d"
  "bench_partitioner_micro"
  "bench_partitioner_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioner_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
