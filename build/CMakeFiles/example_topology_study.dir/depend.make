# Empty dependencies file for example_topology_study.
# This may be replaced when dependencies are built.
