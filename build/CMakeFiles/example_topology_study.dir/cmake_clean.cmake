file(REMOVE_RECURSE
  "CMakeFiles/example_topology_study.dir/examples/topology_study.cpp.o"
  "CMakeFiles/example_topology_study.dir/examples/topology_study.cpp.o.d"
  "example_topology_study"
  "example_topology_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_topology_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
