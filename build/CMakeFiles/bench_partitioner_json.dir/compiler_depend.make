# Empty custom commands generated dependencies file for bench_partitioner_json.
# This may be replaced when dependencies are built.
