file(REMOVE_RECURSE
  "CMakeFiles/example_custom_network.dir/examples/custom_network.cpp.o"
  "CMakeFiles/example_custom_network.dir/examples/custom_network.cpp.o.d"
  "example_custom_network"
  "example_custom_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
