# Empty dependencies file for example_custom_network.
# This may be replaced when dependencies are built.
