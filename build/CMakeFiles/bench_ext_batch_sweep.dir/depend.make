# Empty dependencies file for bench_ext_batch_sweep.
# This may be replaced when dependencies are built.
