file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_batch_sweep.dir/bench/bench_ext_batch_sweep.cc.o"
  "CMakeFiles/bench_ext_batch_sweep.dir/bench/bench_ext_batch_sweep.cc.o.d"
  "bench_ext_batch_sweep"
  "bench_ext_batch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_batch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
