# Empty dependencies file for bench_fig9_lenet_space.
# This may be replaced when dependencies are built.
