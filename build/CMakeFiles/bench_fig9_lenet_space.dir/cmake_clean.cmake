file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_lenet_space.dir/bench/bench_fig9_lenet_space.cc.o"
  "CMakeFiles/bench_fig9_lenet_space.dir/bench/bench_fig9_lenet_space.cc.o.d"
  "bench_fig9_lenet_space"
  "bench_fig9_lenet_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_lenet_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
