# Empty dependencies file for bench_table12_comm_model.
# This may be replaced when dependencies are built.
