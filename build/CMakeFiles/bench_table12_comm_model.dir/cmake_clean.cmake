file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_comm_model.dir/bench/bench_table12_comm_model.cc.o"
  "CMakeFiles/bench_table12_comm_model.dir/bench/bench_table12_comm_model.cc.o.d"
  "bench_table12_comm_model"
  "bench_table12_comm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_comm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
