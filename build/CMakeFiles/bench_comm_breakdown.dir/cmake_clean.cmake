file(REMOVE_RECURSE
  "CMakeFiles/bench_comm_breakdown.dir/bench/bench_comm_breakdown.cc.o"
  "CMakeFiles/bench_comm_breakdown.dir/bench/bench_comm_breakdown.cc.o.d"
  "bench_comm_breakdown"
  "bench_comm_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
