# Empty dependencies file for bench_comm_breakdown.
# This may be replaced when dependencies are built.
