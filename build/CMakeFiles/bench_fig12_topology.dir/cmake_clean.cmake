file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_topology.dir/bench/bench_fig12_topology.cc.o"
  "CMakeFiles/bench_fig12_topology.dir/bench/bench_fig12_topology.cc.o.d"
  "bench_fig12_topology"
  "bench_fig12_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
