# Empty dependencies file for bench_fig12_topology.
# This may be replaced when dependencies are built.
