file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_energy.dir/bench/bench_fig7_energy.cc.o"
  "CMakeFiles/bench_fig7_energy.dir/bench/bench_fig7_energy.cc.o.d"
  "bench_fig7_energy"
  "bench_fig7_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
