# Empty dependencies file for bench_fig5_parallelism.
# This may be replaced when dependencies are built.
