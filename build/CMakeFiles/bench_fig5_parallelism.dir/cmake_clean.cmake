file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_parallelism.dir/bench/bench_fig5_parallelism.cc.o"
  "CMakeFiles/bench_fig5_parallelism.dir/bench/bench_fig5_parallelism.cc.o.d"
  "bench_fig5_parallelism"
  "bench_fig5_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
