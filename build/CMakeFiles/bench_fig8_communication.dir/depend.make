# Empty dependencies file for bench_fig8_communication.
# This may be replaced when dependencies are built.
