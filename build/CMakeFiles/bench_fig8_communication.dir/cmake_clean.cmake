file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_communication.dir/bench/bench_fig8_communication.cc.o"
  "CMakeFiles/bench_fig8_communication.dir/bench/bench_fig8_communication.cc.o.d"
  "bench_fig8_communication"
  "bench_fig8_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
