file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vgga_space.dir/bench/bench_fig10_vgga_space.cc.o"
  "CMakeFiles/bench_fig10_vgga_space.dir/bench/bench_fig10_vgga_space.cc.o.d"
  "bench_fig10_vgga_space"
  "bench_fig10_vgga_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vgga_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
