# Empty dependencies file for bench_fig10_vgga_space.
# This may be replaced when dependencies are built.
