file(REMOVE_RECURSE
  "CMakeFiles/example_spec_planner.dir/examples/spec_planner.cpp.o"
  "CMakeFiles/example_spec_planner.dir/examples/spec_planner.cpp.o.d"
  "example_spec_planner"
  "example_spec_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spec_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
