# Empty dependencies file for example_spec_planner.
# This may be replaced when dependencies are built.
