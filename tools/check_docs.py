#!/usr/bin/env python3
"""Docs-hygiene gate: fail when the front-door docs reference things
that no longer exist in the tree.

Checked documents: README.md, docs/ARCHITECTURE.md, docs/SERVING.md,
tools/README.md.
Checked reference kinds:

  * CLI flags (``--engine``, ``--beam-width``, ...) must appear in
    tools/hyparc_app.cc (its parser or usage string).
  * The reverse direction too: every flag hyparc's parser accepts
    (``arg == "--x"`` in parseArgs) must be advertised in the usage()
    string and mentioned by at least one checked document, so a new
    flag (``--overlap``, ``--limit``, ``--seed``, ...) cannot land
    undocumented.
  * Search-engine names (``--engine <name>``) must be accepted by
    searchEngineFromName in src/core/optimal_partitioner.cc.
  * Backticked targets that look like binaries/targets
    (``bench_*``, ``test_*``, ``hyparc``, ``example_*``,
    ``*_json``) must exist as sources or CMake custom targets.
  * ``--model <name>`` examples must name a real zoo model
    (src/dnn/model_zoo.cc).
  * Relative ``*.md``/``*.py``/source links must exist on disk.
  * The serving contract: docs/SERVING.md's request-schema table
    (rows of the form ``| `field` | ...``) must match the
    kRequestFields whitelist in src/serve/server.hh exactly, in both
    directions — a field added to the parser without documentation,
    or documented without being parsed, fails the gate.

Run from anywhere: paths resolve relative to the repo root (parent of
this script's directory); pass ``--root <dir>`` to check another tree
(the negative tests in tools/test_check_docs.py use this). Exit code 1
lists every stale reference.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS = ["README.md", "docs/ARCHITECTURE.md", "docs/SERVING.md",
        "tools/README.md"]

# Flags consumed by binaries other than hyparc (the google-benchmark
# harness) that the docs legitimately mention.
FOREIGN_FLAGS = {
    "--benchmark_format",
    "--benchmark_out",
    "--benchmark_out_format",
    "--benchmark_min_time",
    "--benchmark_filter",
    "--help",
    # cmake / ctest flags in build instructions
    "--build",
    "--target",
    "--output-on-failure",
    "--test-dir",
}


def read(relpath):
    return (ROOT / relpath).read_text(encoding="utf-8")


def check_serving_schema(errors):
    """docs/SERVING.md's schema table vs server.hh's kRequestFields."""
    server = read("src/serve/server.hh")
    init = re.search(r"kRequestFields\[\]\s*=\s*\{(.*?)\};", server,
                     re.S)
    if not init:
        errors.append("src/serve/server.hh: could not locate the "
                      "kRequestFields initializer (update "
                      "check_docs.py)")
        return
    # Strip the per-field // comments first — they quote nested JSON
    # keys ("nodes", "links") that are not request fields.
    body = re.sub(r"//[^\n]*", "", init.group(1))
    parsed = re.findall(r'"(\w+)"', body)

    serving = read("docs/SERVING.md")
    section = re.search(r"^## Request fields$(.*?)(?=^## |\Z)", serving,
                        re.S | re.M)
    if not section:
        errors.append("docs/SERVING.md: no '## Request fields' "
                      "section found")
        return
    documented = re.findall(r"^\|\s*`(\w+)`", section.group(1), re.M)
    if not documented:
        errors.append("docs/SERVING.md: no request-schema table rows "
                      "(| `field` | ...) under '## Request fields'")
        return
    for field in parsed:
        if field not in documented:
            errors.append(
                f"docs/SERVING.md: request field '{field}' accepted "
                "by the server but missing from the schema table")
    for field in documented:
        if field not in parsed:
            errors.append(
                f"docs/SERVING.md: schema table documents '{field}' "
                "but src/serve/server.hh does not accept it")


def fail(errors):
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    print(f"check_docs: {len(errors)} stale reference(s)", file=sys.stderr)
    return 1


def main():
    errors = []
    app = read("tools/hyparc_app.cc")
    engines = read("src/core/optimal_partitioner.cc")
    zoo = read("src/dnn/model_zoo.cc")
    cmake = read("CMakeLists.txt")

    known_engines = set(
        re.findall(r'name == "(\w+)"', engines)
    )
    # Zoo names are only the ones NetworkBuilder registers (not every
    # quoted string — layer names would silence the check).
    known_models = set(
        re.findall(r'NetworkBuilder(?:\s+\w+)?\("([^"]+)"', zoo)
    )
    # Exact flag tokens hyparc parses or advertises, for exact
    # membership (substring matching would let a stale '--beam' ride
    # on '--beam-width').
    known_flags = set(re.findall(r"(?<![\w-])--[a-z][\w-]*", app))

    # The flags the parser actually accepts, and the usage() string, for
    # the reverse (undocumented-flag) check below.
    parsed_flags = set(re.findall(r'arg == "(--[a-z][\w-]*)"', app))
    usage_match = re.search(
        r"^usage\(\)\n\{\n(.*?)^\}$", app, re.S | re.M)
    usage_body = usage_match.group(1) if usage_match else ""
    doc_flags = set()
    for doc in DOCS:
        doc_flags |= set(
            re.findall(r"(?<![\w-])--[a-z][\w-]*", read(doc)))

    if not usage_match:
        errors.append("tools/hyparc_app.cc: could not locate the "
                      "usage() body (update check_docs.py)")
    for flag in sorted(parsed_flags):
        if usage_body and flag not in set(
                re.findall(r"(?<![\w-])--[a-z][\w-]*", usage_body)):
            errors.append(
                f"tools/hyparc_app.cc: parsed flag '{flag}' missing "
                "from the usage() string")
        if flag not in doc_flags:
            errors.append(
                f"tools/hyparc_app.cc: parsed flag '{flag}' not "
                "documented in any of " + ", ".join(DOCS))

    source_stems = {
        p.stem for p in ROOT.glob("bench/*.cc")
    } | {p.stem for p in ROOT.glob("tests/test_*.cc")}
    example_stems = {
        "example_" + p.stem for p in ROOT.glob("examples/*.cpp")
    }
    custom_targets = set(
        re.findall(r"add_custom_target\((\w+)", cmake)
    )
    known_targets = (
        source_stems | example_stems | custom_targets | {"hyparc"}
    )

    for doc in DOCS:
        text = read(doc)

        # CLI flags: every --flag token must be parsed (or at least
        # advertised) by hyparc, unless it belongs to a foreign tool.
        for flag in sorted(set(re.findall(r"(?<![\w-])--[a-z][\w-]*", text))):
            if flag in FOREIGN_FLAGS:
                continue
            if flag not in known_flags:
                errors.append(f"{doc}: flag '{flag}' not in hyparc_app.cc")

        # Engine names in `--engine X` examples.
        for name in re.findall(r"--engine[ =](\w+)", text):
            if name not in known_engines:
                errors.append(
                    f"{doc}: engine '{name}' not accepted by "
                    "searchEngineFromName")

        # Zoo models in `--model X` examples.
        for name in re.findall(r"--model ([\w-]+)", text):
            if name not in known_models:
                errors.append(f"{doc}: zoo model '{name}' not in model_zoo.cc")

        # Backticked binary/target names.
        for token in re.findall(r"`([\w/.]+)`", text):
            base = token.split("/")[-1]
            if re.fullmatch(r"(bench_\w+|test_\w+|example_\w+|hyparc)", base):
                if base not in known_targets:
                    errors.append(f"{doc}: target '{base}' does not exist")

        # Relative file links/mentions.
        for token in re.findall(
                r"[\(`]((?:[\w-]+/)*[\w.-]+\.(?:md|py|hh|cc|hp))[\)`]", text):
            if token.startswith("/") or "*" in token:
                continue
            candidates = [ROOT / token, ROOT / pathlib.Path(doc).parent / token]
            if any(c.exists() for c in candidates):
                continue
            # Bare filename mentioned in prose: accept it anywhere in
            # the tree (build/ output names are generated, skip those).
            if "/" not in token and (
                    token.startswith("BENCH_") or
                    list(ROOT.glob(f"*/{token}")) or
                    list(ROOT.glob(f"src/*/{token}")) or
                    list(ROOT.glob(token))):
                continue
            errors.append(f"{doc}: file '{token}' does not exist")

    check_serving_schema(errors)

    if errors:
        return fail(errors)
    print(f"check_docs: {len(DOCS)} documents clean")
    return 0


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "--root":
        ROOT = pathlib.Path(sys.argv[2]).resolve()
    sys.exit(main())
