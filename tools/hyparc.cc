/**
 * @file
 * hyparc — command-line front end for the HyPar library. See
 * hyparc_app.hh for the commands.
 */

#include <iostream>

#include "hyparc_app.hh"
#include "util/logging.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) {
        std::cout << hypar::tools::usage() << "\n";
        return 0;
    }
    try {
        const auto opts = hypar::tools::parseArgs(args);
        return hypar::tools::runCommand(opts, std::cout);
    } catch (const hypar::util::FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
