#!/usr/bin/env python3
"""Negative tests for the docs-hygiene gate (tools/check_docs.py).

check_docs.py guards the docs against drift, but a gate that never
fires is indistinguishable from no gate — so this suite copies the
repo into a temp tree, verifies the copy passes, then breaks the copy
in the specific ways the gate promises to catch and asserts it FAILS:

  * a flag removed from hyparc's parser while the docs still mention
    it (stale-flag direction) — and a parsed flag scrubbed from every
    document (undocumented-flag direction);
  * a request field removed from the kRequestFields whitelist in
    src/serve/server.hh while docs/SERVING.md still documents it, and
    the reverse (a schema row deleted from SERVING.md while the
    server still parses the field).

Registered with ctest as ``test_check_docs``; runnable directly.
"""

import pathlib
import re
import shutil
import subprocess
import sys
import tempfile
import unittest

ROOT = pathlib.Path(__file__).resolve().parent.parent
CHECK = ROOT / "tools" / "check_docs.py"

# Everything check_docs.py reads: the documents, the sources it
# cross-references, and the globs it derives target names from.
COPIED = [
    "README.md",
    "CMakeLists.txt",
    "PAPER.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs",
    "tools",
    "src",
    "bench",
    "tests",
    "examples",
]


def make_tree(dst):
    for rel in COPIED:
        src = ROOT / rel
        target = dst / rel
        if src.is_dir():
            shutil.copytree(src, target)
        else:
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy2(src, target)


def run_check(root):
    return subprocess.run(
        [sys.executable, str(CHECK), "--root", str(root)],
        capture_output=True, text=True)


def edit(path, pattern, replacement, count=0):
    """Regex-rewrite a copied file; the pattern must match."""
    text = path.read_text(encoding="utf-8")
    new, n = re.subn(pattern, replacement, text, count=count, flags=re.M)
    if n == 0:
        raise AssertionError(f"pattern {pattern!r} not found in {path}")
    path.write_text(new, encoding="utf-8")


class CheckDocsGate(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="hyparc_docs_")
        self.root = pathlib.Path(self._tmp.name)
        make_tree(self.root)

    def tearDown(self):
        self._tmp.cleanup()

    def test_pristine_copy_passes(self):
        res = run_check(self.root)
        self.assertEqual(res.returncode, 0, res.stderr)

    def test_removing_a_serve_flag_from_the_parser_fails(self):
        # The docs keep advertising --no-cache; hyparc forgets it
        # entirely (parser and usage string both).
        edit(self.root / "tools" / "hyparc_app.cc",
             r"--no-cache", "--no-cash")
        res = run_check(self.root)
        self.assertNotEqual(res.returncode, 0)
        self.assertIn("'--no-cache' not in hyparc_app.cc", res.stderr)

    def test_undocumented_parsed_flag_fails(self):
        # Scrub --evict from every checked document (parser keeps it).
        for rel in ["README.md", "docs/SERVING.md", "docs/ARCHITECTURE.md",
                    "tools/README.md"]:
            path = self.root / rel
            path.write_text(
                path.read_text(encoding="utf-8").replace("--evict",
                                                         "(evict)"),
                encoding="utf-8")
        res = run_check(self.root)
        self.assertNotEqual(res.returncode, 0)
        self.assertIn("--evict", res.stderr)
        self.assertIn("not documented", res.stderr)

    def test_removing_a_schema_row_from_serving_md_fails(self):
        # The server still parses beam_width; the contract stops
        # documenting it.
        edit(self.root / "docs" / "SERVING.md",
             r"^\|\s*`beam_width`[^\n]*\n", "", count=1)
        res = run_check(self.root)
        self.assertNotEqual(res.returncode, 0)
        self.assertIn("beam_width", res.stderr)
        self.assertIn("missing from the schema table", res.stderr)

    def test_removing_a_parsed_field_from_the_server_fails(self):
        # SERVING.md still documents steps; the whitelist drops it.
        edit(self.root / "src" / "serve" / "server.hh",
             r'\n\s*"steps",[^\n]*', "", count=1)
        res = run_check(self.root)
        self.assertNotEqual(res.returncode, 0)
        self.assertIn("steps", res.stderr)
        self.assertIn("does not accept it", res.stderr)

    def test_stale_target_reference_fails(self):
        # A document naming a bench binary that does not exist.
        readme = self.root / "README.md"
        readme.write_text(
            readme.read_text(encoding="utf-8") +
            "\nSee `bench_nonexistent_figure` for details.\n",
            encoding="utf-8")
        res = run_check(self.root)
        self.assertNotEqual(res.returncode, 0)
        self.assertIn("bench_nonexistent_figure", res.stderr)


if __name__ == "__main__":
    unittest.main()
