#include "hyparc_app.hh"

#include <fstream>
#include <ostream>

#include "core/comm_report.hh"
#include "core/optimal_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "dnn/spec_parser.hh"
#include "sim/evaluator.hh"
#include "sim/trace_export.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace hypar::tools {

namespace {

dnn::Network
loadNetwork(const Options &opts)
{
    if (!opts.model.empty() && !opts.spec.empty())
        util::fatal("use either --model or --spec, not both");
    if (!opts.model.empty())
        return dnn::modelByName(opts.model);
    if (!opts.spec.empty())
        return dnn::parseNetworkSpecFile(opts.spec);
    util::fatal("a network is required: --model <name> or --spec <file>");
}

sim::SimConfig
makeConfig(const Options &opts)
{
    sim::SimConfig cfg;
    cfg.levels = opts.levels;
    cfg.comm.batch = opts.batch;
    if (opts.topology == "htree")
        cfg.topology = sim::TopologyKind::kHTree;
    else if (opts.topology == "torus")
        cfg.topology = sim::TopologyKind::kTorus;
    else if (opts.topology == "mesh")
        cfg.topology = sim::TopologyKind::kMesh;
    else
        util::fatal("unknown topology '" + opts.topology +
                    "' (htree|torus|mesh)");
    return cfg;
}

core::HierarchicalPlan
makeStrategyPlan(const Options &opts, const core::CommModel &model)
{
    if (opts.strategy == "hypar")
        return core::makeHyparPlan(model, opts.levels);
    if (opts.strategy == "dp")
        return core::makeDataParallelPlan(model.network(), opts.levels);
    if (opts.strategy == "mp")
        return core::makeModelParallelPlan(model.network(), opts.levels);
    if (opts.strategy == "owt")
        return core::makeOneWeirdTrickPlan(model.network(), opts.levels);
    if (opts.strategy == "optimal") {
        core::SearchOptions search;
        search.engine = core::searchEngineFromName(opts.engine);
        search.beamWidth = opts.beamWidth;
        return core::OptimalPartitioner(model)
            .partition(opts.levels, search)
            .plan;
    }
    util::fatal("unknown strategy '" + opts.strategy +
                "' (hypar|dp|mp|owt|optimal)");
}

int
cmdModels(std::ostream &os)
{
    util::Table t({"name", "layers", "params"});
    for (const auto &net : dnn::allModels()) {
        t.addRow({net.name(), std::to_string(net.size()),
                  std::to_string(net.totalParamElems())});
    }
    t.print(os);
    return 0;
}

int
cmdPlan(const Options &opts, std::ostream &os)
{
    dnn::Network net = loadNetwork(opts);
    core::CommConfig comm;
    comm.batch = opts.batch;
    core::CommModel model(net, comm);
    const auto plan = makeStrategyPlan(opts, model);

    os << net.describe() << "\n"
       << opts.strategy << " plan over " << plan.numAccelerators()
       << " accelerators:\n"
       << core::toString(plan) << "total communication: "
       << util::formatBytes(model.planBytes(plan)) << "\n";
    return 0;
}

int
cmdSimulate(const Options &opts, std::ostream &os)
{
    dnn::Network net = loadNetwork(opts);
    sim::Evaluator ev(net, makeConfig(opts));
    const auto plan = makeStrategyPlan(opts, ev.model());
    const auto m = ev.evaluate(plan);
    const auto dp = ev.evaluate(core::Strategy::kDataParallel);

    os << net.name() << " on " << ev.topology().name() << " x"
       << ev.topology().numNodes() << ", batch " << opts.batch << ", "
       << opts.strategy << ":\n  " << m.summary() << "\n"
       << "  speedup vs Data Parallelism: "
       << util::formatRatio(dp.stepSeconds / m.stepSeconds)
       << ", energy saving: "
       << util::formatRatio(dp.energy.totalJ() / m.energy.totalJ())
       << "\n";
    return 0;
}

int
cmdReport(const Options &opts, std::ostream &os)
{
    dnn::Network net = loadNetwork(opts);
    core::CommConfig comm;
    comm.batch = opts.batch;
    core::CommModel model(net, comm);
    const auto plan = makeStrategyPlan(opts, model);
    os << core::buildCommReport(model, plan).toString();
    return 0;
}

int
cmdTrace(const Options &opts, std::ostream &os)
{
    dnn::Network net = loadNetwork(opts);
    const auto cfg = makeConfig(opts);

    core::CommModel model(net, cfg.comm);
    auto topo = sim::makeTopology(cfg.topology, cfg.levels, cfg.noc);
    sim::SimOptions sim_opts;
    sim_opts.recordTrace = true;
    sim::TrainingSimulator simulator(model, cfg.acc, cfg.energy, *topo,
                                     sim_opts);
    (void)simulator.simulate(makeStrategyPlan(opts, model));

    if (opts.output.empty()) {
        sim::writeChromeTrace(os, simulator.lastTrace());
    } else {
        std::ofstream out(opts.output);
        if (!out)
            util::fatal("cannot write '" + opts.output + "'");
        sim::writeChromeTrace(out, simulator.lastTrace());
        os << "wrote " << simulator.lastTrace().size() << " events to "
           << opts.output << "\n";
    }
    return 0;
}

} // namespace

std::string
usage()
{
    return "usage: hyparc <plan|simulate|report|trace|models>\n"
           "  --model <zoo name> | --spec <file>\n"
           "  [--levels N] [--batch B] [--topology htree|torus|mesh]\n"
           "  [--strategy hypar|dp|mp|owt|optimal] [-o <file>]\n"
           "  [--engine auto|dense|sparse|beam] [--beam-width N]\n"
           "    (strategy=optimal: joint-DP engine; dense is exact to\n"
           "     H=10, sparse/beam reach H=16, beam-width 0 = default)";
}

Options
parseArgs(const std::vector<std::string> &args)
{
    if (args.empty())
        util::fatal("missing command\n" + usage());

    Options opts;
    opts.command = args[0];

    auto value = [&](std::size_t &i) -> const std::string & {
        if (i + 1 >= args.size())
            util::fatal("flag '" + args[i] + "' needs a value");
        return args[++i];
    };

    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--model") {
            opts.model = value(i);
        } else if (arg == "--spec") {
            opts.spec = value(i);
        } else if (arg == "--levels") {
            opts.levels = std::stoul(value(i));
        } else if (arg == "--batch") {
            opts.batch = std::stoul(value(i));
        } else if (arg == "--topology") {
            opts.topology = value(i);
        } else if (arg == "--strategy") {
            opts.strategy = value(i);
        } else if (arg == "--engine") {
            opts.engine = value(i);
        } else if (arg == "--beam-width") {
            opts.beamWidth = std::stoul(value(i));
        } else if (arg == "-o" || arg == "--output") {
            opts.output = value(i);
        } else {
            util::fatal("unknown flag '" + arg + "'\n" + usage());
        }
    }
    return opts;
}

int
runCommand(const Options &opts, std::ostream &os)
{
    if (opts.command == "models")
        return cmdModels(os);
    if (opts.command == "plan")
        return cmdPlan(opts, os);
    if (opts.command == "simulate")
        return cmdSimulate(opts, os);
    if (opts.command == "report")
        return cmdReport(opts, os);
    if (opts.command == "trace")
        return cmdTrace(opts, os);
    util::fatal("unknown command '" + opts.command + "'\n" + usage());
}

} // namespace hypar::tools
