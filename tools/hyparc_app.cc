#include "hyparc_app.hh"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>
#include <random>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "arch/fault_map.hh"
#include "core/comm_report.hh"
#include "core/optimal_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "dnn/spec_parser.hh"
#include "serve/server.hh"
#include "sim/evaluator.hh"
#include "sim/robust.hh"
#include "sim/trace_export.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace hypar::tools {

namespace {

dnn::Network
loadNetwork(const Options &opts)
{
    if (!opts.model.empty() && !opts.spec.empty())
        util::fatal("use either --model or --spec, not both");
    if (!opts.model.empty())
        return dnn::modelByName(opts.model);
    if (!opts.spec.empty())
        return dnn::parseNetworkSpecFile(opts.spec);
    util::fatal("a network is required: --model <name> or --spec <file>");
}

sim::SimConfig
makeConfig(const Options &opts)
{
    sim::SimConfig cfg;
    cfg.levels = opts.levels;
    cfg.comm.batch = opts.batch;
    if (opts.topology == "htree")
        cfg.topology = sim::TopologyKind::kHTree;
    else if (opts.topology == "torus")
        cfg.topology = sim::TopologyKind::kTorus;
    else if (opts.topology == "mesh")
        cfg.topology = sim::TopologyKind::kMesh;
    else
        util::fatal("unknown topology '" + opts.topology +
                    "' (htree|torus|mesh)");
    cfg.options.overlapGradComm = opts.overlap;
    return cfg;
}

core::HierarchicalPlan
makeStrategyPlan(const Options &opts, const core::CommModel &model,
                 core::HierarchicalResult *search_out = nullptr)
{
    if (opts.strategy == "hypar")
        return core::makeHyparPlan(model, opts.levels);
    if (opts.strategy == "dp")
        return core::makeDataParallelPlan(model.network(), opts.levels);
    if (opts.strategy == "mp")
        return core::makeModelParallelPlan(model.network(), opts.levels);
    if (opts.strategy == "owt")
        return core::makeOneWeirdTrickPlan(model.network(), opts.levels);
    if (opts.strategy == "optimal") {
        core::SearchOptions search;
        search.engine = core::searchEngineFromName(opts.engine);
        search.beamWidth = opts.beamWidth;
        auto result =
            core::OptimalPartitioner(model).partition(opts.levels, search);
        if (search_out != nullptr)
            *search_out = result;
        return result.plan;
    }
    util::fatal("unknown strategy '" + opts.strategy +
                "' (hypar|dp|mp|owt|optimal)");
}

int
cmdModels(std::ostream &os)
{
    util::Table t({"name", "layers", "params", "wiring"});
    for (const auto &net : dnn::allModels()) {
        t.addRow({net.name(), std::to_string(net.size()),
                  std::to_string(net.totalParamElems()), "chain"});
    }
    // The DAG fixtures live outside allModels() (chain-only consumers
    // iterate that list) but resolve through --model like the rest.
    for (const auto &net :
         {dnn::makeResNetBlock(), dnn::makeInceptionBranch()}) {
        t.addRow({net.name(), std::to_string(net.size()),
                  std::to_string(net.totalParamElems()), "dag"});
    }
    t.print(os);
    return 0;
}

int
cmdPlan(const Options &opts, std::ostream &os)
{
    dnn::Network net = loadNetwork(opts);
    core::CommConfig comm;
    comm.batch = opts.batch;
    core::CommModel model(net, comm);
    core::HierarchicalResult search;
    const auto plan = makeStrategyPlan(opts, model, &search);

    os << net.describe() << "\n"
       << opts.strategy << " plan over " << plan.numAccelerators()
       << " accelerators:\n"
       << core::toString(plan) << "total communication: "
       << util::formatBytes(model.planBytes(plan)) << "\n";
    // Search-effort diagnostics: only the joint-DP engines count
    // relaxations and carry SearchStats (see HierarchicalResult).
    if (opts.verbose && opts.strategy == "optimal") {
        os << "transitions evaluated: " << search.transitionsEvaluated
           << " (engine " << opts.engine << ")\n"
           << "nodes expanded: " << search.stats.expanded
           << ", pruned: " << search.stats.pruned << ", frontier width: "
           << search.stats.widthUsed << "\n"
           << "optimality: "
           << (search.stats.certifiedExact ? "certified exact"
                                           : "no certificate")
           << "\n";
    }
    return 0;
}

int
cmdSimulate(const Options &opts, std::ostream &os)
{
    dnn::Network net = loadNetwork(opts);
    sim::Evaluator ev(net, makeConfig(opts));
    const auto plan = makeStrategyPlan(opts, ev.model());
    const auto m = ev.evaluate(plan);
    const auto dp = ev.evaluate(core::Strategy::kDataParallel);

    os << net.name() << " on " << ev.topology().name() << " x"
       << ev.topology().numNodes() << ", batch " << opts.batch << ", "
       << opts.strategy << ":\n  " << m.summary() << "\n"
       << "  speedup vs Data Parallelism: "
       << util::formatRatio(dp.stepSeconds / m.stepSeconds)
       << ", energy saving: "
       << util::formatRatio(dp.energy.totalJ() / m.energy.totalJ())
       << "\n";
    return 0;
}

int
cmdReport(const Options &opts, std::ostream &os)
{
    dnn::Network net = loadNetwork(opts);
    core::CommConfig comm;
    comm.batch = opts.batch;
    core::CommModel model(net, comm);
    const auto plan = makeStrategyPlan(opts, model);
    os << core::buildCommReport(model, plan).toString();
    return 0;
}

int
cmdTrace(const Options &opts, std::ostream &os)
{
    dnn::Network net = loadNetwork(opts);
    const auto cfg = makeConfig(opts);

    core::CommModel model(net, cfg.comm);
    auto topo = sim::makeTopology(cfg.topology, cfg.levels, cfg.noc);
    sim::SimOptions sim_opts;
    sim_opts.recordTrace = true;
    sim::TrainingSimulator simulator(model, cfg.acc, cfg.energy, *topo,
                                     sim_opts);
    (void)simulator.simulate(makeStrategyPlan(opts, model));

    if (opts.output.empty()) {
        sim::writeChromeTrace(os, simulator.lastTrace());
    } else {
        std::ofstream out(opts.output);
        if (!out)
            util::fatal("cannot write '" + opts.output + "'");
        sim::writeChromeTrace(out, simulator.lastTrace());
        os << "wrote " << simulator.lastTrace().size() << " events to "
           << opts.output << "\n";
    }
    return 0;
}

/** One parsed sweep axis: a hierarchy level ("H1") or a layer name. */
struct SweepAxis
{
    bool isLevel = false;
    std::size_t index = 0; //!< level index (0-based) or layer index
    std::string name;
};

SweepAxis
parseSweepAxis(const std::string &token, const dnn::Network &net,
               std::size_t levels)
{
    if (token.size() >= 2 && token[0] == 'H' &&
        token.find_first_not_of("0123456789", 1) == std::string::npos) {
        std::size_t h = 0;
        try {
            h = std::stoul(token.substr(1));
        } catch (const std::out_of_range &) {
            h = 0; // falls through to the range fatal below
        }
        if (h < 1 || h > levels)
            util::fatal("sweep axis '" + token +
                        "' is outside the hierarchy (H1..H" +
                        std::to_string(levels) + ")");
        return {true, h - 1, token};
    }
    return {false, net.layerIndex(token), token};
}

/** One scored grid point, masks already rendered as bitstrings. */
struct SweepRow
{
    std::string a;
    std::string b;
    double stepSeconds = 0.0;
    double speedup = 0.0;
};

/** Escape a string for embedding in a JSON string value. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void
writeSweepRows(const Options &opts, const std::string &mode,
               const SweepAxis &a, const SweepAxis &b, bool sampled,
               const std::vector<SweepRow> &rows, std::ostream &os)
{
    char buf[128];
    if (opts.format == "csv") {
        os << "# model=" << opts.model << opts.spec << " mode=" << mode
           << " axes=" << a.name << "," << b.name << " levels="
           << opts.levels << " batch=" << opts.batch << " topology="
           << opts.topology << " strategy=" << opts.strategy;
        if (opts.overlap)
            os << " overlap=true";
        if (sampled)
            os << " limit=" << opts.limit << " seed=" << opts.seed
               << " sample=" << opts.sample;
        os << "\n"
           << a.name << "," << b.name
           << ",step_seconds,speedup_vs_dp\n";
        for (const auto &row : rows) {
            std::snprintf(buf, sizeof(buf), "%.17g,%.6g",
                          row.stepSeconds, row.speedup);
            os << row.a << "," << row.b << "," << buf << "\n";
        }
        return;
    }
    os << "{\"model\":\"" << jsonEscape(opts.model + opts.spec)
       << "\",\"mode\":\"" << mode << "\",\"axes\":[\""
       << jsonEscape(a.name) << "\",\"" << jsonEscape(b.name)
       << "\"],\"levels\":" << opts.levels << ",\"batch\":"
       << opts.batch << ",\"topology\":\"" << jsonEscape(opts.topology)
       << "\",\"strategy\":\"" << jsonEscape(opts.strategy) << "\"";
    if (opts.overlap)
        os << ",\"overlap\":true";
    if (sampled)
        os << ",\"limit\":" << opts.limit << ",\"seed\":" << opts.seed
           << ",\"sample\":\"" << jsonEscape(opts.sample) << "\"";
    os << ",\"points\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "\"step_seconds\":%.17g,\"speedup_vs_dp\":%.6g",
                      rows[i].stepSeconds, rows[i].speedup);
        os << (i == 0 ? "" : ",") << "{\"a\":\"" << rows[i].a
           << "\",\"b\":\"" << rows[i].b << "\"," << buf << "}";
    }
    os << "]}\n";
}

int
cmdSweep(const Options &opts, std::ostream &os)
{
    dnn::Network net = loadNetwork(opts);
    const auto cfg = makeConfig(opts);
    sim::Evaluator ev(net, cfg);

    // Reject bad output options before the grid is computed (and
    // before -o truncates an existing file).
    if (opts.format != "csv" && opts.format != "json")
        util::fatal("unknown sweep format '" + opts.format +
                    "' (csv|json)");
    if (opts.sample != "uniform" && opts.sample != "biased")
        util::fatal("unknown sweep sampler '" + opts.sample +
                    "' (uniform|biased)");
    if (opts.axes.empty())
        util::fatal("sweep needs --axes A,B (two hierarchy levels like "
                    "H1,H4 or two layer names like conv5_2,fc1)");
    const auto comma = opts.axes.find(',');
    if (comma == std::string::npos ||
        opts.axes.find(',', comma + 1) != std::string::npos)
        util::fatal("--axes takes exactly two comma-separated entries");
    const SweepAxis a =
        parseSweepAxis(opts.axes.substr(0, comma), net, opts.levels);
    const SweepAxis b =
        parseSweepAxis(opts.axes.substr(comma + 1), net, opts.levels);
    if (a.isLevel != b.isLevel)
        util::fatal("--axes must name two hierarchy levels or two "
                    "layers, not a mix");
    if (a.index == b.index)
        util::fatal("--axes entries must differ");

    const double dp_time =
        ev.evaluate(core::Strategy::kDataParallel).stepSeconds;
    const core::HierarchicalPlan base = makeStrategyPlan(opts, ev.model());
    std::vector<SweepRow> rows;

    // --limit N: deterministically sample N distinct grid points
    // (std::mt19937_64 seeded by --seed, emitted in ascending mask
    // order) instead of enumerating the full 4^L / 4^H grid — the only
    // way to sweep level-mask grids past 8 layers or layer-vector
    // grids past H = 8. Sampled points are scored in one
    // evaluateBatch call.
    const std::size_t bits = a.isLevel ? net.size() : opts.levels;
    const std::uint64_t axis_masks =
        bits < 63 ? std::uint64_t{1} << bits : 0;
    const bool sampled =
        opts.limit > 0 &&
        (bits > 31 || opts.limit < axis_masks * axis_masks);
    if (!sampled && opts.limit > 0 && bits > 8)
        util::fatal("--limit " + std::to_string(opts.limit) +
                    " covers the whole grid; sampling a grid too big "
                    "to enumerate needs a limit below its " +
                    std::to_string(axis_masks * axis_masks) +
                    " points");
    if (sampled) {
        if (bits > 31)
            util::fatal("sweep axis exceeds 2^31 masks; nothing that "
                        "size is sampleable");
        std::mt19937_64 rng(opts.seed);
        std::set<std::pair<std::uint64_t, std::uint64_t>> points;
        if (opts.sample == "biased") {
            // Neighborhood-biased sampler: start from the base plan's
            // own axis masks and flip each bit with probability 1/4,
            // concentrating samples around the --strategy plan (the
            // region sweeps usually care about) instead of spreading
            // them uniformly. Same seed -> same points, like uniform.
            auto level_mask = [&](std::size_t h) {
                std::uint64_t m = 0;
                for (std::size_t l = 0; l < bits; ++l)
                    if (base.levels[h][l] == core::Parallelism::kModel)
                        m |= std::uint64_t{1} << l;
                return m;
            };
            auto layer_state = [&](std::size_t layer) {
                std::uint64_t m = 0;
                for (std::size_t h = 0; h < bits; ++h)
                    if (base.levels[h][layer] ==
                        core::Parallelism::kModel)
                        m |= std::uint64_t{1} << h;
                return m;
            };
            const std::uint64_t base_a =
                a.isLevel ? level_mask(a.index) : layer_state(a.index);
            const std::uint64_t base_b =
                a.isLevel ? level_mask(b.index) : layer_state(b.index);
            auto perturb = [&](std::uint64_t m) {
                for (std::size_t bit = 0; bit < bits; ++bit)
                    if (rng() % 4 == 0)
                        m ^= std::uint64_t{1} << bit;
                return m;
            };
            while (points.size() < opts.limit)
                points.insert({perturb(base_a), perturb(base_b)});
        } else {
            while (points.size() < opts.limit)
                points.insert({rng() % axis_masks, rng() % axis_masks});
        }

        std::vector<core::HierarchicalPlan> grid;
        grid.reserve(points.size());
        core::HierarchicalPlan scaffold = base;
        for (const auto &[ma, mb] : points) {
            if (a.isLevel) {
                scaffold.levels[a.index] =
                    core::levelPlanFromMask(ma, bits);
                scaffold.levels[b.index] =
                    core::levelPlanFromMask(mb, bits);
            } else {
                core::assignLayerFromState(scaffold, a.index, ma);
                core::assignLayerFromState(scaffold, b.index, mb);
            }
            grid.push_back(scaffold);
        }
        const auto metrics = ev.evaluateBatch(grid);
        rows.reserve(points.size());
        std::size_t i = 0;
        for (const auto &[ma, mb] : points) {
            const auto &m = metrics[i++];
            rows.push_back(
                {core::toBitString(core::levelPlanFromMask(ma, bits)),
                 core::toBitString(core::levelPlanFromMask(mb, bits)),
                 m.stepSeconds, dp_time / m.stepSeconds});
        }
    } else if (a.isLevel) {
        // Fig. 9 shape: the full 2^L x 2^L grid of layer masks at two
        // hierarchy levels; outer axis substituted into a scaffold,
        // inner axis scored by the incremental sweep.
        const std::size_t num_layers = net.size();
        if (num_layers > 8)
            util::fatal("level-mask sweep is 4^L points; refusing "
                        "networks with more than 8 weighted layers "
                        "(use --limit N to sample)");
        const std::uint64_t masks = std::uint64_t{1} << num_layers;
        rows.reserve(masks * masks);
        core::HierarchicalPlan scaffold = base;
        for (std::uint64_t ma = 0; ma < masks; ++ma) {
            scaffold.levels[a.index] =
                core::levelPlanFromMask(ma, num_layers);
            ev.sweepNeighborhood(
                scaffold, b.index,
                [&](std::uint64_t mb, const sim::StepMetrics &m) {
                    rows.push_back({core::toBitString(
                                        scaffold.levels[a.index]),
                                    core::toBitString(
                                        core::levelPlanFromMask(
                                            mb, num_layers)),
                                    m.stepSeconds,
                                    dp_time / m.stepSeconds});
                });
        }
    } else {
        // Fig. 10 shape: the 2^H x 2^H grid of two layers' level
        // vectors, scored in one evaluateBatch call.
        if (opts.levels > 8)
            util::fatal("layer-vector sweep is 4^H points; refusing "
                        "more than 8 hierarchy levels "
                        "(use --limit N to sample)");
        const std::uint64_t masks = std::uint64_t{1} << opts.levels;
        std::vector<core::HierarchicalPlan> grid;
        grid.reserve(masks * masks);
        core::HierarchicalPlan scaffold = base;
        for (std::uint64_t ma = 0; ma < masks; ++ma) {
            core::assignLayerFromState(scaffold, a.index, ma);
            for (std::uint64_t mb = 0; mb < masks; ++mb) {
                core::assignLayerFromState(scaffold, b.index, mb);
                grid.push_back(scaffold);
            }
        }
        const auto metrics = ev.evaluateBatch(grid);
        rows.reserve(grid.size());
        for (std::uint64_t ma = 0; ma < masks; ++ma) {
            for (std::uint64_t mb = 0; mb < masks; ++mb) {
                const auto &m = metrics[ma * masks + mb];
                rows.push_back({core::toBitString(core::levelPlanFromMask(
                                    ma, opts.levels)),
                                core::toBitString(core::levelPlanFromMask(
                                    mb, opts.levels)),
                                m.stepSeconds,
                                dp_time / m.stepSeconds});
            }
        }
    }

    const std::string mode = a.isLevel ? "levels" : "layers";
    if (opts.output.empty()) {
        writeSweepRows(opts, mode, a, b, sampled, rows, os);
    } else {
        std::ofstream out(opts.output);
        if (!out)
            util::fatal("cannot write '" + opts.output + "'");
        writeSweepRows(opts, mode, a, b, sampled, rows, out);
        os << "wrote " << rows.size() << " grid points to "
           << opts.output << "\n";
    }
    return 0;
}

/** Parse a single floating-point rate in [0, 1]. */
double
parseRate(const std::string &token)
{
    double rate = 0.0;
    try {
        std::size_t used = 0;
        rate = std::stod(token, &used);
        if (used != token.size())
            throw std::invalid_argument(token);
    } catch (const std::exception &) {
        util::fatal("bad fault rate '" + token + "'");
    }
    if (!(rate >= 0.0 && rate <= 1.0))
        util::fatal("fault rate must be in [0, 1], got '" + token + "'");
    return rate;
}

/** One point of a fault-rate curve. */
struct FaultRow
{
    double rate = 0.0;
    double staticSeconds = 0.0;    //!< pristine plan on degraded arrays
    double replannedSeconds = 0.0; //!< per-sample re-planned
};

void
writeFaultRows(const Options &opts, const std::vector<FaultRow> &rows,
               std::ostream &os)
{
    char buf[160];
    if (opts.format == "csv") {
        os << "# model=" << opts.model << opts.spec << " mode=faults"
           << " levels=" << opts.levels << " batch=" << opts.batch
           << " topology=" << opts.topology << " strategy="
           << opts.strategy << " samples=" << opts.samples << " seed="
           << opts.seed << "\n"
           << "rate,static_step_seconds,replanned_step_seconds,"
              "recovery\n";
        for (const auto &row : rows) {
            std::snprintf(buf, sizeof(buf), "%.6g,%.17g,%.17g,%.6g",
                          row.rate, row.staticSeconds,
                          row.replannedSeconds,
                          row.staticSeconds / row.replannedSeconds);
            os << buf << "\n";
        }
        return;
    }
    os << "{\"model\":\"" << jsonEscape(opts.model + opts.spec)
       << "\",\"mode\":\"faults\",\"levels\":" << opts.levels
       << ",\"batch\":" << opts.batch << ",\"topology\":\""
       << jsonEscape(opts.topology) << "\",\"strategy\":\""
       << jsonEscape(opts.strategy) << "\",\"samples\":" << opts.samples
       << ",\"seed\":" << opts.seed << ",\"points\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::snprintf(
            buf, sizeof(buf),
            "{\"rate\":%.6g,\"static_step_seconds\":%.17g,"
            "\"replanned_step_seconds\":%.17g,\"recovery\":%.6g}",
            rows[i].rate, rows[i].staticSeconds, rows[i].replannedSeconds,
            rows[i].staticSeconds / rows[i].replannedSeconds);
        os << (i == 0 ? "" : ",") << buf;
    }
    os << "]}\n";
}

int
cmdFaults(const Options &opts, std::ostream &os)
{
    dnn::Network net = loadNetwork(opts);
    const sim::SimConfig cfg = makeConfig(opts);
    if (!opts.map.empty() && opts.faultSweep)
        util::fatal("use either --map or --sweep, not both");

    if (!opts.map.empty()) {
        // Mode 1: re-plan around a known fault map. The degraded
        // evaluator validates the map, derates the topology, and hands
        // the search the degraded cost tables.
        sim::SimConfig degraded_cfg = cfg;
        degraded_cfg.faults = arch::parseFaultMapFile(opts.map);

        sim::Evaluator pristine(net, cfg);
        sim::Evaluator degraded(net, degraded_cfg);
        const auto static_plan = makeStrategyPlan(opts, pristine.model());
        const auto replanned = makeStrategyPlan(opts, degraded.model());

        const double healthy = pristine.evaluate(static_plan).stepSeconds;
        const double stale = degraded.evaluate(static_plan).stepSeconds;
        const double fresh = degraded.evaluate(replanned).stepSeconds;

        os << net.name() << " on " << degraded.topology().name() << " x"
           << degraded.topology().numNodes() << " with fault map "
           << opts.map << " (" << degraded_cfg.faults.nodes.size()
           << " node, " << degraded_cfg.faults.links.size()
           << " link entries):\n"
           << "  compute slowdown: "
           << util::formatRatio(arch::computeScaleFactor(
                  degraded_cfg.faults, degraded.topology().numNodes()))
           << ", level penalties:";
        for (const double p : degraded.topology().levelPenalties())
            os << " " << util::formatRatio(p);
        os << "\n  healthy array, " << opts.strategy << " plan:    "
           << util::formatSeconds(healthy) << "/step\n"
           << "  degraded array, same plan:   "
           << util::formatSeconds(stale) << "/step\n"
           << "  degraded array, re-planned:  "
           << util::formatSeconds(fresh) << "/step  (recovers "
           << util::formatRatio(stale / fresh) << ")\n";
        if (!(replanned == static_plan))
            os << "re-planned layout:\n" << core::toString(replanned);
        return 0;
    }

    if (opts.faultSweep) {
        // Mode 2: cost-vs-failure-rate curves. --rate R0:R1:N sweeps N
        // rate points; each point averages `samples` fault maps drawn
        // from independent seeded streams, scoring the pristine plan
        // as-is ("static") against a per-sample re-planned layout.
        const auto c1 = opts.rate.find(':');
        const auto c2 =
            c1 == std::string::npos ? c1 : opts.rate.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos)
            util::fatal("--sweep needs --rate R0:R1:N (e.g. 0:0.3:7)");
        const double r0 = parseRate(opts.rate.substr(0, c1));
        const double r1 = parseRate(opts.rate.substr(c1 + 1, c2 - c1 - 1));
        std::size_t n = 0;
        try {
            n = std::stoul(opts.rate.substr(c2 + 1));
        } catch (const std::exception &) {
            n = 0;
        }
        if (n == 0)
            util::fatal("--rate R0:R1:N needs at least one rate point");
        if (opts.samples == 0)
            util::fatal("--samples must be at least 1");

        sim::Evaluator pristine(net, cfg);
        const std::size_t num_nodes = pristine.topology().numNodes();
        // No link-level fault model (mesh): sample node faults only.
        const std::size_t num_links =
            pristine.topology().supportsLinkFaults()
                ? pristine.topology().numLinks()
                : 0;
        const auto base_plan = makeStrategyPlan(opts, pristine.model());

        std::vector<FaultRow> rows;
        rows.reserve(n);
        for (std::size_t ri = 0; ri < n; ++ri) {
            const double rate =
                n == 1 ? r0
                       : r0 + (r1 - r0) * static_cast<double>(ri) /
                                  static_cast<double>(n - 1);
            double static_sum = 0.0;
            double replanned_sum = 0.0;
            for (std::size_t k = 0; k < opts.samples; ++k) {
                sim::SimConfig sample_cfg = cfg;
                sample_cfg.faults = arch::sampleFaultMap(
                    rate, num_nodes, num_links,
                    arch::mixSeed(opts.seed, ri * opts.samples + k));
                sim::Evaluator ev(net, sample_cfg);
                static_sum += ev.evaluate(base_plan).stepSeconds;
                replanned_sum +=
                    ev.evaluate(makeStrategyPlan(opts, ev.model()))
                        .stepSeconds;
            }
            const double k = static_cast<double>(opts.samples);
            rows.push_back({rate, static_sum / k, replanned_sum / k});
        }

        if (opts.output.empty()) {
            writeFaultRows(opts, rows, os);
        } else {
            std::ofstream out(opts.output);
            if (!out)
                util::fatal("cannot write '" + opts.output + "'");
            writeFaultRows(opts, rows, out);
            os << "wrote " << rows.size() << " rate points to "
               << opts.output << "\n";
        }
        return 0;
    }

    // Mode 3 (default): robust planning — one plan minimizing the
    // expected step time over the sampled fault distribution.
    if (opts.rate.find(':') != std::string::npos)
        util::fatal("--rate R0:R1:N is only for --sweep; robust "
                    "planning takes a single --rate R");
    sim::RobustOptions ropts;
    ropts.rate = parseRate(opts.rate);
    ropts.samples = opts.samples;
    ropts.seed = opts.seed;
    ropts.search.engine = core::searchEngineFromName(opts.engine);
    ropts.search.beamWidth = opts.beamWidth;
    const sim::RobustResult result = sim::robustPlan(net, cfg, ropts);

    os << net.name() << ": robust plan over " << opts.samples
       << " fault maps at rate " << ropts.rate << " (seed " << opts.seed
       << ", " << result.candidates.size() << " candidate plans):\n"
       << core::toString(result.plan) << "expected step time: "
       << util::formatSeconds(result.expectedStepSeconds)
       << " (pristine-optimal plan would average "
       << util::formatSeconds(result.pristineExpectedStepSeconds)
       << ")\n";
    return 0;
}

int
cmdServe(const Options &opts, std::ostream &os, std::istream &in)
{
    serve::ServeOptions sopts;
    if (!opts.cacheDir.empty())
        sopts.cacheDir = opts.cacheDir;
    sopts.noCache = opts.noCache;
    if (opts.maxSessions != 0)
        sopts.maxSessions = opts.maxSessions;
    sopts.maxSessionBytes = opts.maxSessionBytes;
    serve::Server server(sopts);
    if (opts.evict) {
        os << "evicted " << server.cache().evict()
           << " plan cache entries from " << server.cache().dir().string()
           << "\n";
        return 0;
    }
    return server.run(in, os);
}

} // namespace

std::string
usage()
{
    return "usage: hyparc "
           "<plan|simulate|report|trace|sweep|faults|serve|models>\n"
           "  --model <zoo name> | --spec <file>\n"
           "  [--levels N] [--batch B] [--topology htree|torus|mesh]\n"
           "  [--strategy hypar|dp|mp|owt|optimal] [-o|--output <file>]\n"
           "  [--engine auto|dense|sparse|beam|astar] [--beam-width N]\n"
           "    (strategy=optimal: joint-DP engine; dense is exact to\n"
           "     H=10, sparse/beam/astar reach H=16; beam-width 0 =\n"
           "     adaptive, growing until the result certifies exact)\n"
           "  [--verbose]  (plan: search diagnostics for --strategy\n"
           "     optimal: transitions evaluated, expanded/pruned\n"
           "     counts (nodes; dominance-skipped transitions for the\n"
           "     sparse engine), frontier width, optimality\n"
           "     certificate)\n"
           "  [--overlap]  (simulate/sweep/trace: overlap gradient\n"
           "     reductions with remaining compute — the async\n"
           "     all-reduce schedule; swept incrementally via the\n"
           "     two-tape replay)\n"
           "  sweep: --axes A,B [--format csv|json] [--limit N]\n"
           "         [--seed S] [--sample uniform|biased]\n"
           "    A,B = two hierarchy levels (H1,H4 -> Fig. 9 grid) or\n"
           "    two layer names (conv5_2,fc1 -> Fig. 10 grid), scored\n"
           "    around the --strategy base plan via the batched\n"
           "    evaluator; --limit N samples N grid points\n"
           "    deterministically (--seed, default 0), opening\n"
           "    level-mask grids past 8 layers and layer-vector grids\n"
           "    past H = 8; --sample biased concentrates the points\n"
           "    around the base plan (each of its mask bits flips with\n"
           "    probability 1/4) instead of drawing uniformly\n"
           "  faults: [--map <file>] | [--sweep --rate R0:R1:N] |\n"
           "          [--rate R] [--samples K] [--seed S]\n"
           "          [--format csv|json]\n"
           "    --map: score the degraded array described by a fault\n"
           "    map file ('node <id> <scale>' / 'link <id> <scale>'\n"
           "    lines) and re-plan around it; --sweep: emit a\n"
           "    cost-vs-failure-rate curve over N rate points from R0\n"
           "    to R1, averaging K sampled fault maps per point;\n"
           "    neither: robust planning — return the plan minimizing\n"
           "    the expected step time over K fault maps drawn at\n"
           "    --rate R (all modes deterministic for a fixed --seed)\n"
           "  serve: [--cache-dir <dir>] [--no-cache] [--evict]\n"
           "         [--max-sessions N] [--max-session-bytes B]\n"
           "    long-lived planner service: newline-delimited JSON\n"
           "    requests on stdin, one JSON response line each, blank\n"
           "    line flushes an admission batch (docs/SERVING.md has\n"
           "    the schema); plan results are cached content-addressed\n"
           "    under --cache-dir (default ~/.cache/hyparc/plans);\n"
           "    --no-cache bypasses reads and writes; --evict clears\n"
           "    the cache and exits; --max-sessions sizes the warm\n"
           "    Evaluator LRU (>= 1, default 8) to the serving mix;\n"
           "    --max-session-bytes caps the LRU's approximate\n"
           "    resident size instead (0 = unlimited, never evicts\n"
           "    below one session); independent requests of a batch\n"
           "    execute in parallel over the process thread pool,\n"
           "    byte-identical to serial execution";
}

Options
parseArgs(const std::vector<std::string> &args)
{
    if (args.empty())
        util::fatal("missing command\n" + usage());

    Options opts;
    opts.command = args[0];

    auto value = [&](std::size_t &i) -> const std::string & {
        if (i + 1 >= args.size())
            util::fatal("flag '" + args[i] + "' needs a value");
        return args[++i];
    };

    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--model") {
            opts.model = value(i);
        } else if (arg == "--spec") {
            opts.spec = value(i);
        } else if (arg == "--levels") {
            opts.levels = std::stoul(value(i));
        } else if (arg == "--batch") {
            opts.batch = std::stoul(value(i));
        } else if (arg == "--topology") {
            opts.topology = value(i);
        } else if (arg == "--strategy") {
            opts.strategy = value(i);
        } else if (arg == "--engine") {
            opts.engine = value(i);
        } else if (arg == "--beam-width") {
            opts.beamWidth = std::stoul(value(i));
        } else if (arg == "--axes") {
            opts.axes = value(i);
        } else if (arg == "--format") {
            opts.format = value(i);
        } else if (arg == "--limit") {
            opts.limit = std::stoul(value(i));
        } else if (arg == "--seed") {
            opts.seed = std::stoul(value(i));
        } else if (arg == "--sample") {
            opts.sample = value(i);
        } else if (arg == "--map") {
            opts.map = value(i);
        } else if (arg == "--rate") {
            opts.rate = value(i);
        } else if (arg == "--samples") {
            opts.samples = std::stoul(value(i));
        } else if (arg == "--sweep") {
            opts.faultSweep = true;
        } else if (arg == "--cache-dir") {
            opts.cacheDir = value(i);
        } else if (arg == "--max-sessions") {
            opts.maxSessions = std::stoul(value(i));
            if (opts.maxSessions == 0)
                util::fatal("--max-sessions must be at least 1");
        } else if (arg == "--max-session-bytes") {
            opts.maxSessionBytes = std::stoul(value(i));
        } else if (arg == "--no-cache") {
            opts.noCache = true;
        } else if (arg == "--evict") {
            opts.evict = true;
        } else if (arg == "--overlap") {
            opts.overlap = true;
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "-o" || arg == "--output") {
            opts.output = value(i);
        } else {
            util::fatal("unknown flag '" + arg + "'\n" + usage());
        }
    }
    return opts;
}

int
runCommand(const Options &opts, std::ostream &os, std::istream &in)
{
    if (opts.command == "models")
        return cmdModels(os);
    if (opts.command == "plan")
        return cmdPlan(opts, os);
    if (opts.command == "simulate")
        return cmdSimulate(opts, os);
    if (opts.command == "report")
        return cmdReport(opts, os);
    if (opts.command == "trace")
        return cmdTrace(opts, os);
    if (opts.command == "sweep")
        return cmdSweep(opts, os);
    if (opts.command == "faults")
        return cmdFaults(opts, os);
    if (opts.command == "serve")
        return cmdServe(opts, os, in);
    util::fatal("unknown command '" + opts.command + "'\n" + usage());
}

int
runCommand(const Options &opts, std::ostream &os)
{
    return runCommand(opts, os, std::cin);
}

} // namespace hypar::tools
