#!/usr/bin/env python3
"""Gate google-benchmark rows against recorded baselines.

Reads a google-benchmark JSON file (as written by the
`bench_partitioner_json` CMake target) and a baseline file
(tools/bench_baseline.json) listing gated rows with their recorded
times and failure thresholds. Exits non-zero when a gated row is
missing, errored, or slower than its threshold — so the CI Release
job fails on a perf regression instead of just printing a dimmer
report.

Usage:
    tools/check_bench.py [BENCH_partitioner.json] [bench_baseline.json]
"""

import json
import sys
from pathlib import Path

# google-benchmark time units -> seconds.
UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def load(path: Path) -> dict:
    with path.open() as fh:
        return json.load(fh)


def main(argv: list[str]) -> int:
    bench_path = Path(argv[1]) if len(argv) > 1 else Path(
        "build/BENCH_partitioner.json")
    baseline_path = Path(argv[2]) if len(argv) > 2 else Path(
        "tools/bench_baseline.json")
    for path in (bench_path, baseline_path):
        if not path.exists():
            print(f"error: {path} not found", file=sys.stderr)
            return 1

    benchmarks = load(bench_path).get("benchmarks", [])
    gates = load(baseline_path)["gates"]

    failures = []
    for gate in gates:
        name = gate["benchmark"]
        # Match the registered name with or without run-config suffixes
        # google-benchmark appends (e.g. "/iterations:1").
        rows = [
            b for b in benchmarks
            if (b["name"] == name or b["name"].startswith(name + "/"))
            and b.get("run_type") != "aggregate"
        ]
        if not rows:
            failures.append(f"{name}: no row in {bench_path}")
            continue
        for row in rows:
            if row.get("error_occurred"):
                failures.append(
                    f"{row['name']}: errored — "
                    f"{row.get('error_message', 'unknown error')}")
                continue
            seconds = row["real_time"] * UNIT_SECONDS[row["time_unit"]]
            limit = gate["max_seconds"]
            verdict = "OK" if seconds <= limit else "REGRESSION"
            print(f"{row['name']}: {seconds:.2f} s "
                  f"(recorded {gate['recorded_seconds']:.2f} s, "
                  f"limit {limit:.2f} s) {verdict}")
            if seconds > limit:
                failures.append(
                    f"{row['name']}: {seconds:.2f} s exceeds the "
                    f"{limit:.2f} s gate")

    if failures:
        print(f"\n{len(failures)} bench gate failure(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(gates)} bench gate(s) pass")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
