#!/usr/bin/env python3
"""Gate google-benchmark rows against recorded baselines.

Reads one or more google-benchmark JSON files (as written by the
`bench_partitioner_json` / `bench_serve_concurrent_json` CMake
targets) plus a baseline file (tools/bench_baseline.json) listing
gated rows with their recorded times and failure thresholds. Exits
non-zero when a gated row is missing, errored, or slower than its
threshold — so the CI Release job fails on a perf regression instead
of just printing a dimmer report.

Usage:
    tools/check_bench.py [FILE.json ...]

Positional files may appear in any order: a JSON file with a
top-level "gates" key is the baseline, everything else is a bench
result. Defaults: build/BENCH_partitioner.json +
tools/bench_baseline.json. A gate's optional "file" field names the
bench result (by basename) its row must come from; gates without one
match against BENCH_partitioner.json for compatibility with older
baselines.
"""

import json
import sys
from pathlib import Path

# google-benchmark time units -> seconds.
UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}

DEFAULT_BENCH = "BENCH_partitioner.json"


def load(path: Path) -> dict:
    with path.open() as fh:
        return json.load(fh)


def main(argv: list[str]) -> int:
    paths = [Path(a) for a in argv[1:]] or [
        Path("build/BENCH_partitioner.json"),
        Path("tools/bench_baseline.json"),
    ]
    for path in paths:
        if not path.exists():
            print(f"error: {path} not found", file=sys.stderr)
            return 1

    baseline = None
    benches: dict[str, list[dict]] = {}
    for path in paths:
        data = load(path)
        if "gates" in data:
            if baseline is not None:
                print("error: more than one baseline file (top-level "
                      f"'gates' key): {path}", file=sys.stderr)
                return 1
            baseline = data
        else:
            benches[path.name] = data.get("benchmarks", [])
    if baseline is None:
        print("error: no baseline file among the inputs (expected a "
              "top-level 'gates' key)", file=sys.stderr)
        return 1

    failures = []
    for gate in baseline["gates"]:
        name = gate["benchmark"]
        bench_file = gate.get("file", DEFAULT_BENCH)
        if bench_file not in benches:
            failures.append(f"{name}: bench file {bench_file} not among "
                            f"the inputs")
            continue
        # Match the registered name with or without run-config suffixes
        # google-benchmark appends (e.g. "/iterations:1").
        rows = [
            b for b in benches[bench_file]
            if (b["name"] == name or b["name"].startswith(name + "/"))
            and b.get("run_type") != "aggregate"
        ]
        if not rows:
            failures.append(f"{name}: no row in {bench_file}")
            continue
        for row in rows:
            if row.get("error_occurred"):
                failures.append(
                    f"{row['name']}: errored — "
                    f"{row.get('error_message', 'unknown error')}")
                continue
            seconds = row["real_time"] * UNIT_SECONDS[row["time_unit"]]
            limit = gate["max_seconds"]
            verdict = "OK" if seconds <= limit else "REGRESSION"
            print(f"{row['name']}: {seconds:.6f} s "
                  f"(recorded {gate['recorded_seconds']:.6f} s, "
                  f"limit {limit:.6f} s) {verdict}")
            if seconds > limit:
                failures.append(
                    f"{row['name']}: {seconds:.6f} s exceeds the "
                    f"{limit:.6f} s gate")

    if failures:
        print(f"\n{len(failures)} bench gate failure(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline['gates'])} bench gate(s) pass")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
