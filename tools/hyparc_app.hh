/**
 * @file
 * The hyparc command-line application, split from main() so the
 * argument parsing and command execution are unit-testable.
 *
 *   hyparc plan --model VGG-A [--levels 4] [--batch 256]
 *   hyparc simulate --spec net.hp [--topology torus] [--strategy dp]
 *   hyparc report --model AlexNet            # per-layer comm breakdown
 *   hyparc trace --model Lenet-c -o out.json # chrome://tracing export
 *   hyparc sweep --model Lenet-c --axes H1,H4      # Fig. 9 style grid
 *   hyparc sweep --model VGG-A --axes conv5_2,fc1  # Fig. 10 style grid
 *   hyparc faults --model Lenet-c --map faults.txt # re-plan around map
 *   hyparc faults --model Lenet-c --sweep --rate 0:0.3:7  # cost curves
 *   hyparc faults --model Lenet-c --rate 0.1 --samples 8  # robust plan
 *   hyparc serve                             # planner-as-a-service loop
 *   hyparc serve --evict                     # clear the plan cache
 *   hyparc models                            # list the zoo
 */

#ifndef HYPAR_TOOLS_HYPARC_APP_HH
#define HYPAR_TOOLS_HYPARC_APP_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace hypar::tools {

/** Parsed command line. */
struct Options
{
    std::string command; //!< plan | simulate | report | trace | sweep |
                         //!< faults | serve | models
    std::string model;        //!< zoo model name
    std::string spec;         //!< path to a network spec file
    std::string output;       //!< -o target (trace, sweep, faults)
    std::string topology = "htree"; //!< htree | torus | mesh
    std::string strategy = "hypar"; //!< hypar | dp | mp | owt | optimal
    std::string engine = "auto"; //!< auto | dense | sparse | beam | astar
    std::string axes;         //!< sweep axes: "H1,H4" or "conv5_2,fc1"
    std::string format = "csv";     //!< sweep/faults output: csv | json
    std::string map;          //!< faults: fault-map file (--map)
    std::string rate = "0.1"; //!< faults: rate R, or R0:R1:N (--sweep)
    std::string sample = "uniform"; //!< sweep --limit: uniform | biased
    std::string cacheDir; //!< serve: plan cache dir (default: see
                          //!< serve::PlanCache::defaultDir)
    std::size_t beamWidth = 0;      //!< 0 = engine default
    std::size_t levels = 4;
    std::size_t batch = 256;
    std::size_t limit = 0;    //!< sweep: sample at most N grid points
    std::size_t seed = 0;     //!< sweep/faults: deterministic seed
    std::size_t samples = 8;  //!< faults: fault maps per rate point
    std::size_t maxSessions = 0; //!< serve: warm-session capacity
                                 //!< (0 = registry default)
    std::size_t maxSessionBytes = 0; //!< serve: warm-session byte
                                     //!< budget (0 = unlimited)
    bool faultSweep = false;  //!< faults: sweep a rate range (--sweep)
    bool overlap = false;     //!< overlap gradient reductions (async)
    bool verbose = false;     //!< extra search diagnostics (plan)
    bool noCache = false;     //!< serve: bypass plan cache reads+writes
    bool evict = false;       //!< serve: clear the plan cache and exit
};

/**
 * Parse argv into Options; fatal (util::FatalError) on bad usage so
 * tests can assert on messages.
 */
Options parseArgs(const std::vector<std::string> &args);

/**
 * Execute a parsed command, writing human-readable output to `os`
 * (JSON response lines for `serve`). The serve loop reads its
 * newline-delimited requests from std::cin.
 */
int runCommand(const Options &opts, std::ostream &os);

/** Same, with an explicit request stream for `serve` (tests drive the
 *  loop with an istringstream; other commands ignore `in`). */
int runCommand(const Options &opts, std::ostream &os, std::istream &in);

/** One-line usage summary (printed on error and by --help). */
std::string usage();

} // namespace hypar::tools

#endif // HYPAR_TOOLS_HYPARC_APP_HH
