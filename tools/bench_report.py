#!/usr/bin/env python3
"""Summarize bench_partitioner_micro JSON output.

Reads a google-benchmark JSON file (by default
build/BENCH_partitioner.json, as written by the `bench_partitioner_json`
CMake target) and prints every optimized/Reference benchmark pair with
its speedup, so the perf trajectory of the partition-search engine can
be tracked across PRs.

Usage:
    tools/bench_report.py [BENCH_partitioner.json]
"""

import json
import sys
from pathlib import Path


def load(path: Path) -> dict:
    with path.open() as fh:
        return json.load(fh)


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else Path(
        "build/BENCH_partitioner.json")
    if not path.exists():
        print(f"error: {path} not found — build and run the "
              "`bench_partitioner_json` CMake target first",
              file=sys.stderr)
        return 1

    data = load(path)
    times = {}  # name -> (real_time, unit)
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # Skipped rows (e.g. the AVX2 kernels on a host without AVX2)
        # carry no time; leave the pair out rather than report a bogus
        # 0x speedup.
        if bench.get("error_occurred"):
            continue
        times[bench["name"]] = (bench["real_time"], bench["time_unit"])

    rows = []
    for name, (fast, unit) in sorted(times.items()):
        if "Reference" in name:
            continue
        # BM_Foo/arg pairs with BM_FooReference/arg.
        head, slash, arg = name.partition("/")
        ref_name = head + "Reference" + slash + arg
        if ref_name not in times:
            continue
        ref, ref_unit = times[ref_name]
        assert unit == ref_unit, f"unit mismatch for {name}"
        rows.append((name, ref, fast, unit, ref / fast if fast else 0.0))

    if not rows:
        print("no optimized/Reference pairs found in", path)
        return 1

    name_w = max(len(r[0]) for r in rows)
    print(f"{'benchmark':<{name_w}}  {'reference':>14}  "
          f"{'optimized':>14}  {'speedup':>8}")
    for name, ref, fast, unit, speedup in rows:
        print(f"{name:<{name_w}}  {ref:>12.1f} {unit}  "
              f"{fast:>12.1f} {unit}  {speedup:>7.2f}x")

    worst = min(r[4] for r in rows)
    print(f"\nminimum speedup across {len(rows)} pairs: {worst:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
